package quorum

import (
	"math"
	"testing"

	"relaxlattice/internal/history"
)

func TestSiteSetBasics(t *testing.T) {
	s := Sites(0, 2, 4)
	if !s.Has(0) || s.Has(1) || !s.Has(4) {
		t.Errorf("membership wrong")
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d", s.Size())
	}
	if !s.Intersects(Sites(2)) || s.Intersects(Sites(1, 3)) {
		t.Errorf("Intersects wrong")
	}
	if !Sites(0).SubsetOf(s) || s.SubsetOf(Sites(0, 2)) {
		t.Errorf("SubsetOf wrong")
	}
	if s.String() != "{0,2,4}" {
		t.Errorf("String = %q", s.String())
	}
	idx := s.Indexes()
	if len(idx) != 3 || idx[2] != 4 {
		t.Errorf("Indexes = %v", idx)
	}
}

// The paper's Q1/Q2 constraints expressed with explicit quorums: Deq
// reads {0,1,2} or {2,3,4}; Enq writes {0,1,2}... construct an
// assignment realizing exactly Q1.
func TestExplicitIntersection(t *testing.T) {
	a := NewExplicit(5,
		map[string][]SiteSet{
			history.NameEnq: {Sites(0)},
			history.NameDeq: {Sites(0, 1, 2), Sites(2, 3, 4)},
		},
		map[string][]SiteSet{
			history.NameEnq: {Sites(0, 1, 2, 3, 4)}, // full write: everyone sees it
			history.NameDeq: {Sites(0)},
		},
	)
	if !a.Intersects(history.NameDeq, history.NameEnq) {
		t.Errorf("Q1 should hold")
	}
	// Deq initial {2,3,4} misses Deq final {0}: Q2 fails.
	if a.Intersects(history.NameDeq, history.NameDeq) {
		t.Errorf("Q2 should fail")
	}
	rel := a.Relation()
	if !Q1().IsSubrelationOf(rel) {
		t.Errorf("relation %v misses Q1", rel)
	}
	if Q2().IsSubrelationOf(rel) {
		t.Errorf("relation %v wrongly includes Q2", rel)
	}
	if a.Intersects("nope", history.NameEnq) {
		t.Errorf("unknown op intersects")
	}
	if a.Sites() != 5 {
		t.Errorf("Sites = %d", a.Sites())
	}
}

func TestExplicitHasQuorum(t *testing.T) {
	a := NewExplicit(4,
		map[string][]SiteSet{"Op": {Sites(0, 1), Sites(2, 3)}},
		map[string][]SiteSet{"Op": {Sites(1, 2)}},
	)
	// {0,1,2} up: initial {0,1} ✓, final {1,2} ✓.
	if !a.HasQuorum("Op", []bool{true, true, true, false}) {
		t.Errorf("quorum should form")
	}
	// {0,1} up: initial ✓ but final {1,2} misses 2.
	if a.HasQuorum("Op", []bool{true, true, false, false}) {
		t.Errorf("quorum should not form without final")
	}
	if a.HasQuorum("nope", []bool{true, true, true, true}) {
		t.Errorf("unknown op has quorum")
	}
}

func TestGridQuorums(t *testing.T) {
	g := Grid(2, 3, "Read")
	if g.Sites() != 6 {
		t.Fatalf("Sites = %d", g.Sites())
	}
	// Every row intersects every column.
	if !g.Intersects("Read", "Read") {
		t.Errorf("grid rows must intersect columns")
	}
	// A full row plus a full column alive forms both quorums.
	alive := []bool{true, true, true, true, false, false} // row 0 + site 3 (column 0)
	if !g.HasQuorum("Read", alive) {
		t.Errorf("row 0 + column 0 should form quorums")
	}
	// Only a column alive: no initial (row) quorum.
	alive = []bool{true, false, false, true, false, false}
	if g.HasQuorum("Read", alive) {
		t.Errorf("single column cannot form a row quorum")
	}
}

// Exact availability matches a brute-force reference on a small grid.
func TestExplicitAvailability(t *testing.T) {
	g := Grid(2, 2, "Op")
	pUp := 0.9
	got := g.Availability("Op", pUp)
	// Reference: enumerate patterns; initial = some row fully up,
	// final = some column fully up.
	want := 0.0
	for mask := 0; mask < 16; mask++ {
		up := func(i int) bool { return mask&(1<<i) != 0 }
		p := 1.0
		for i := 0; i < 4; i++ {
			if up(i) {
				p *= pUp
			} else {
				p *= 1 - pUp
			}
		}
		row := (up(0) && up(1)) || (up(2) && up(3))
		col := (up(0) && up(2)) || (up(1) && up(3))
		if row && col {
			want += p
		}
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
	if g.Availability("nope", pUp) != 0 {
		t.Errorf("unknown op available")
	}
}

func TestExplicitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"sites":   func() { NewExplicit(0, nil, nil) },
		"emptyQ":  func() { NewExplicit(3, map[string][]SiteSet{"X": {}}, nil) },
		"zeroQ":   func() { NewExplicit(3, map[string][]SiteSet{"X": {Sites()}}, nil) },
		"range":   func() { NewExplicit(3, map[string][]SiteSet{"X": {Sites(5)}}, nil) },
		"badGrid": func() { Grid(0, 3) },
		"badSite": func() { Sites(64) },
		"avail": func() {
			NewExplicit(30, map[string][]SiteSet{"X": {Sites(1)}}, map[string][]SiteSet{"X": {Sites(1)}}).Availability("X", 0.5)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Grid quorums beat majorities on quorum size: for a 4x4 grid, quorums
// have 4 sites while a 16-site majority needs 9.
func TestGridQuorumSizeAdvantage(t *testing.T) {
	g := Grid(4, 4, "Op")
	// At high pUp the grid's availability is high despite small quorums.
	if a := g.Availability("Op", 0.95); a < 0.95 {
		t.Errorf("grid availability = %v", a)
	}
}
