package quorum

import (
	"sort"
	"strings"

	"relaxlattice/internal/history"
)

// Pair is one element of a quorum intersection relation: the invocation
// of operation Inv depends on (must observe) operations named Op —
// inv(Inv) Q Op holds when every initial quorum for Inv intersects
// every final quorum for Op (Section 3.1).
type Pair struct {
	Inv string
	Op  string
}

// Relation is a quorum intersection relation Q between invocations and
// operations, at operation-name granularity (which is the granularity
// of the paper's constraints Q₁, Q₂, A₁, A₂). The zero value is the
// empty relation.
type Relation struct {
	pairs map[Pair]bool
}

// NewRelation builds a relation from pairs.
func NewRelation(pairs ...Pair) Relation {
	m := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return Relation{pairs: m}
}

// Union returns Q ∪ R.
func (r Relation) Union(other Relation) Relation {
	out := make(map[Pair]bool, len(r.pairs)+len(other.pairs))
	for p := range r.pairs {
		out[p] = true
	}
	for p := range other.pairs {
		out[p] = true
	}
	return Relation{pairs: out}
}

// Holds reports inv(p) Q q.
func (r Relation) Holds(inv history.Invocation, q history.Op) bool {
	return r.pairs[Pair{Inv: inv.Name, Op: q.Name}]
}

// Pairs returns the relation's pairs, sorted for determinism.
func (r Relation) Pairs() []Pair {
	out := make([]Pair, 0, len(r.pairs))
	for p := range r.pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inv != out[j].Inv {
			return out[i].Inv < out[j].Inv
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// IsSubrelationOf reports r ⊆ other.
func (r Relation) IsSubrelationOf(other Relation) bool {
	for p := range r.pairs {
		if !other.pairs[p] {
			return false
		}
	}
	return true
}

// String renders the relation as "{inv(Deq)→Enq, inv(Deq)→Deq}".
func (r Relation) String() string {
	pairs := r.Pairs()
	if len(pairs) == 0 {
		return "∅"
	}
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = "inv(" + p.Inv + ")→" + p.Op
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// The paper's constraints as relations.

// Q1 is constraint Q₁ of Section 3.3: each initial Deq quorum
// intersects each final Enq quorum.
func Q1() Relation { return NewRelation(Pair{Inv: history.NameDeq, Op: history.NameEnq}) }

// Q2 is constraint Q₂ of Section 3.3: each initial Deq quorum
// intersects each final Deq quorum.
func Q2() Relation { return NewRelation(Pair{Inv: history.NameDeq, Op: history.NameDeq}) }

// A1 is constraint A₁ of Section 3.4: every initial Debit quorum
// intersects every final Credit quorum.
func A1() Relation { return NewRelation(Pair{Inv: history.NameDebit, Op: history.NameCredit}) }

// A2 is constraint A₂ of Section 3.4: every initial Debit quorum
// intersects every final Debit quorum.
func A2() Relation { return NewRelation(Pair{Inv: history.NameDebit, Op: history.NameDebit}) }

// Views enumerates the Q-views of H for operation p (Definitions 1 and
// 2): subhistories of H that (1) include every operation q of H with
// inv(p) Q q and (2) are Q-closed — whenever they contain an operation
// r they contain every earlier operation q with inv(r) Q q. The visit
// callback receives each view; returning false stops the enumeration
// early. Views are generated largest-first (the full history H is
// always a Q-view and comes first).
func (r Relation) Views(h history.History, p history.Invocation, visit func(g history.History) bool) {
	n := len(h)
	required := make([]bool, n)
	var optional []int
	for i, q := range h {
		if r.Holds(p, q) {
			required[i] = true
		} else {
			optional = append(optional, i)
		}
	}
	if len(optional) > 30 {
		panic("quorum: view enumeration over more than 30 optional operations")
	}
	include := make([]bool, n)
	// Iterate subsets of the optional positions, largest first.
	for mask := uint64(1)<<uint(len(optional)) - 1; ; mask-- {
		for i := range include {
			include[i] = required[i]
		}
		for b, pos := range optional {
			if mask&(1<<uint(b)) != 0 {
				include[pos] = true
			}
		}
		if closedUnder(r, h, include) {
			var g history.History
			for i, in := range include {
				if in {
					g = append(g, h[i])
				}
			}
			if !visit(g) {
				return
			}
		}
		if mask == 0 {
			return
		}
	}
}

// closedUnder reports whether the included subhistory is Q-closed.
func closedUnder(r Relation, h history.History, include []bool) bool {
	for i, in := range include {
		if !in {
			continue
		}
		inv := h[i].Inv()
		for j := 0; j < i; j++ {
			if !include[j] && r.Holds(inv, h[j]) {
				return false
			}
		}
	}
	return true
}
