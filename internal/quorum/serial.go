package quorum

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// DependencyViolation is a counterexample to Definition 3: a history H
// in L(A), a Q-view G of H for operation P, with G·P ∈ L(A) but
// H·P ∉ L(A) — the view justified a response the true state forbids.
type DependencyViolation struct {
	H, G history.History
	P    history.Op
}

// String renders the counterexample.
func (v DependencyViolation) String() string {
	return fmt.Sprintf("H=%v, Q-view G=%v, p=%v: G·p ∈ L(A) but H·p ∉ L(A)", v.H, v.G, v.P)
}

// IsSerialDependency checks, by bounded enumeration, whether Q is a
// serial dependency relation for A (Definition 3): for all histories
// G and H in L(A) such that G is a Q-view of H for p,
// G·p ∈ L(A) ⇒ H·p ∈ L(A). Histories H are enumerated over the
// alphabet up to length maxLen; p ranges over the alphabet. It returns
// the first violation found, if any. Quorum consensus replication
// guarantees one-copy serializability iff Q is a serial dependency
// relation (Section 3.2).
func IsSerialDependency(a automaton.Automaton, rel Relation, alphabet []history.Op, maxLen int) (bool, *DependencyViolation) {
	var violation *DependencyViolation
	for _, h := range automaton.Language(a, alphabet, maxLen) {
		for _, p := range alphabet {
			if automaton.Accepts(a, h.Append(p)) {
				continue // implication holds trivially
			}
			inv := p.Inv()
			rel.Views(h, inv, func(g history.History) bool {
				if !automaton.Accepts(a, g) {
					return true // Definition 3 quantifies over G ∈ L(A)
				}
				if automaton.Accepts(a, g.Append(p)) {
					violation = &DependencyViolation{H: h, G: g, P: p}
					return false
				}
				return true
			})
			if violation != nil {
				return false, violation
			}
		}
	}
	return true, nil
}

// IsOneCopySerializable checks, by bounded language comparison, the
// extension of one-copy serializability to typed objects
// (Section 3.2): L(QCA(A, Q, η)) = L(A).
func IsOneCopySerializable(q *QCA, alphabet []history.Op, maxLen int) automaton.CompareResult {
	return automaton.Compare(q, q.Base(), alphabet, maxLen)
}

// MinimalityWitness reports whether dropping any single pair from Q
// breaks the serial dependency property — i.e. whether Q is minimal
// (Section 3.2: "no R ⊂ Q guarantees one-copy serializability").
// It returns, per removed pair, whether the reduced relation still is a
// serial dependency relation (all must be false for minimality).
func MinimalityWitness(a automaton.Automaton, rel Relation, alphabet []history.Op, maxLen int) map[Pair]bool {
	out := make(map[Pair]bool)
	pairs := rel.Pairs()
	for _, drop := range pairs {
		var kept []Pair
		for _, p := range pairs {
			if p != drop {
				kept = append(kept, p)
			}
		}
		ok, _ := IsSerialDependency(a, NewRelation(kept...), alphabet, maxLen)
		out[drop] = ok
	}
	return out
}
