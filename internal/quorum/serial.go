package quorum

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// DependencyViolation is a counterexample to Definition 3: a history H
// in L(A), a Q-view G of H for operation P, with G·P ∈ L(A) but
// H·P ∉ L(A) — the view justified a response the true state forbids.
type DependencyViolation struct {
	H, G history.History
	P    history.Op
}

// String renders the counterexample.
func (v DependencyViolation) String() string {
	return fmt.Sprintf("H=%v, Q-view G=%v, p=%v: G·p ∈ L(A) but H·p ∉ L(A)", v.H, v.G, v.P)
}

// acceptOracle is a bounded acceptance set for one automaton: the
// canonical keys of every accepted history up to a length bound. The
// serial dependency check queries acceptance of h, of every Q-view g of
// h, and of their one-operation extensions; answering those from one
// up-front language enumeration replaces the per-query δ* replays that
// dominated the naive check (each Accepts call replayed a whole
// history, and views are enumerated per (h, p) pair).
type acceptOracle struct {
	// histories is L(A) up to maxLen in BFS order (the enumeration
	// order the naive check used, so first-found violations agree).
	histories []history.History
	accepted  map[string]bool
}

// newAcceptOracle enumerates L(A) once up to maxLen+1: histories up to
// maxLen seed the H loop, and the extra length covers their
// one-operation extensions.
func newAcceptOracle(a automaton.Automaton, alphabet []history.Op, maxLen int) *acceptOracle {
	lang := automaton.Language(a, alphabet, maxLen+1)
	o := &acceptOracle{accepted: make(map[string]bool, len(lang))}
	cut := len(lang)
	for i, h := range lang {
		o.accepted[h.Key()] = true
		if len(h) > maxLen && i < cut {
			cut = i // BFS order: lengths are nondecreasing
		}
	}
	o.histories = lang[:cut]
	return o
}

// accepts reports h ∈ L(A) for histories within the bound.
func (o *acceptOracle) accepts(h history.History) bool {
	return o.accepted[h.Key()]
}

// acceptsExt reports h·p ∈ L(A) without materializing the extension:
// History.Key joins operation strings with a single space.
func (o *acceptOracle) acceptsExt(h history.History, p history.Op) bool {
	if len(h) == 0 {
		return o.accepted[p.String()]
	}
	return o.accepted[h.Key()+" "+p.String()]
}

// check runs the Definition 3 enumeration for one relation against the
// precomputed acceptance set.
func (o *acceptOracle) check(rel Relation, alphabet []history.Op) (bool, *DependencyViolation) {
	var violation *DependencyViolation
	for _, h := range o.histories {
		for _, p := range alphabet {
			if o.acceptsExt(h, p) {
				continue // implication holds trivially
			}
			rel.Views(h, p.Inv(), func(g history.History) bool {
				if !o.accepts(g) {
					return true // Definition 3 quantifies over G ∈ L(A)
				}
				if o.acceptsExt(g, p) {
					violation = &DependencyViolation{H: h, G: g, P: p}
					return false
				}
				return true
			})
			if violation != nil {
				return false, violation
			}
		}
	}
	return true, nil
}

// IsSerialDependency checks, by bounded enumeration, whether Q is a
// serial dependency relation for A (Definition 3): for all histories
// G and H in L(A) such that G is a Q-view of H for p,
// G·p ∈ L(A) ⇒ H·p ∈ L(A). Histories H are enumerated over the
// alphabet up to length maxLen; p ranges over the alphabet. It returns
// the first violation found, if any. Quorum consensus replication
// guarantees one-copy serializability iff Q is a serial dependency
// relation (Section 3.2).
func IsSerialDependency(a automaton.Automaton, rel Relation, alphabet []history.Op, maxLen int) (bool, *DependencyViolation) {
	return newAcceptOracle(a, alphabet, maxLen).check(rel, alphabet)
}

// IsOneCopySerializable checks, by bounded language comparison, the
// extension of one-copy serializability to typed objects
// (Section 3.2): L(QCA(A, Q, η)) = L(A). The QCA is compiled to its
// view-family form (see viewauto.go) so the comparison runs on the
// memoized engine.
func IsOneCopySerializable(q *QCA, alphabet []history.Op, maxLen int) automaton.CompareResult {
	return automaton.Compare(q.Compiled(), q.Base(), alphabet, maxLen)
}

// PairVerdict is one row of a minimality check: whether the relation
// with Dropped removed still is a serial dependency relation.
type PairVerdict struct {
	Dropped     Pair
	StillSerial bool
}

// MinimalityWitness reports whether dropping any single pair from Q
// breaks the serial dependency property — i.e. whether Q is minimal
// (Section 3.2: "no R ⊂ Q guarantees one-copy serializability").
// It returns, per removed pair in Pairs() order, whether the reduced
// relation still is a serial dependency relation (all must be false for
// minimality). The acceptance oracle is shared across the drops, so the
// language is enumerated once rather than once per pair.
func MinimalityWitness(a automaton.Automaton, rel Relation, alphabet []history.Op, maxLen int) []PairVerdict {
	oracle := newAcceptOracle(a, alphabet, maxLen)
	pairs := rel.Pairs()
	out := make([]PairVerdict, 0, len(pairs))
	for _, drop := range pairs {
		var kept []Pair
		for _, p := range pairs {
			if p != drop {
				kept = append(kept, p)
			}
		}
		ok, _ := oracle.check(NewRelation(kept...), alphabet)
		out = append(out, PairVerdict{Dropped: drop, StillSerial: ok})
	}
	return out
}
