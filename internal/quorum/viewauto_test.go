package quorum

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
)

// The compiled view-family automaton must accept exactly the language
// of the direct (history-state) QCA. NaiveCompare explores per history,
// so this differential test does not itself depend on the engine.

func queueRelations() []struct {
	name string
	rel  Relation
} {
	return []struct {
		name string
		rel  Relation
	}{
		{"empty", NewRelation()},
		{"Q1", Q1()},
		{"Q2", Q2()},
		{"Q1Q2", Q1().Union(Q2())},
	}
}

func TestCompiledMatchesDirectPriorityQueue(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	folds := []struct {
		name string
		fold *FoldEval
	}{
		{"eta", PQFold()},
		{"etaPrime", PQPrimeFold()},
		{"delta", nil}, // NewQCA defaults nil to DeltaFold(base)
	}
	for _, rc := range queueRelations() {
		for _, fc := range folds {
			q := NewQCA("qca", specs.PriorityQueue(), rc.rel, fc.fold)
			res := automaton.NaiveCompare(q, q.Compiled(), alphabet, 5)
			if !res.Equal {
				t.Errorf("%s/%s: onlyDirect=%v onlyCompiled=%v", rc.name, fc.name, res.OnlyA, res.OnlyB)
			}
		}
	}
}

func TestCompiledMatchesDirectFIFO(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	for _, rc := range queueRelations() {
		q := NewQCA("qca", specs.FIFOQueue(), rc.rel, FIFOFold())
		res := automaton.NaiveCompare(q, q.Compiled(), alphabet, 5)
		if !res.Equal {
			t.Errorf("%s: onlyDirect=%v onlyCompiled=%v", rc.name, res.OnlyA, res.OnlyB)
		}
	}
}

func TestCompiledMatchesDirectAccount(t *testing.T) {
	alphabet := history.AccountAlphabet(2)
	rels := []struct {
		name string
		rel  Relation
	}{
		{"empty", NewRelation()},
		{"A1", A1()},
		{"A2", A2()},
		{"A1A2", A1().Union(A2())},
	}
	for _, rc := range rels {
		q := NewQCA("qca", specs.BankAccount(), rc.rel, AccountFold())
		res := automaton.NaiveCompare(q, q.Compiled(), alphabet, 5)
		if !res.Equal {
			t.Errorf("%s: onlyDirect=%v onlyCompiled=%v", rc.name, res.OnlyA, res.OnlyB)
		}
	}
}

func TestCompiledKeepsQCAName(t *testing.T) {
	q := NewQCA("QCA(PQ,{Q1},η)", specs.PriorityQueue(), Q1(), PQFold())
	if got := q.Compiled().Name(); got != "QCA(PQ,{Q1},η)" {
		t.Errorf("Compiled().Name() = %q", got)
	}
}

// The compiled automaton is deterministic at the state level: one
// successor per accepted operation. That is what collapses the engine's
// class frontier.
func TestCompiledIsDeterministic(t *testing.T) {
	q := NewQCA("qca", specs.PriorityQueue(), Q1(), PQFold())
	ok, wit := automaton.IsDeterministic(q.Compiled(), history.QueueAlphabet(2), 6)
	if !ok {
		t.Errorf("compiled QCA nondeterministic at %v", wit)
	}
}

// Step on a foreign state value must reject rather than panic.
func TestCompiledStepForeignState(t *testing.T) {
	q := NewQCA("qca", specs.PriorityQueue(), Q1(), PQFold())
	if got := q.Compiled().Step(HistState{H: history.Empty}, history.Enq(1)); got != nil {
		t.Errorf("Step on foreign state = %v, want nil", got)
	}
}
