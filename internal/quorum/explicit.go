package quorum

import (
	"fmt"
	"sort"
	"strings"
)

// SiteSet is a set of site indexes, the granularity at which explicit
// quorums are declared.
type SiteSet uint64

// Sites builds a SiteSet from indexes.
func Sites(indexes ...int) SiteSet {
	var s SiteSet
	for _, i := range indexes {
		if i < 0 || i >= 64 {
			panic(fmt.Sprintf("quorum: site index %d outside [0,64)", i))
		}
		s |= 1 << uint(i)
	}
	return s
}

// Has reports membership.
func (s SiteSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Intersects reports s ∩ t ≠ ∅.
func (s SiteSet) Intersects(t SiteSet) bool { return s&t != 0 }

// SubsetOf reports s ⊆ t.
func (s SiteSet) SubsetOf(t SiteSet) bool { return s&^t == 0 }

// Size returns |s|.
func (s SiteSet) Size() int {
	n := 0
	for x := s; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Indexes returns the member indexes, ascending.
func (s SiteSet) Indexes() []int {
	var out []int
	for i := 0; i < 64; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the set as "{0,2,4}".
func (s SiteSet) String() string {
	parts := make([]string, 0, s.Size())
	for _, i := range s.Indexes() {
		parts = append(parts, fmt.Sprintf("%d", i))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ExplicitAssignment lists, per operation, the minimal initial and
// final quorums as explicit site sets (any superset of a listed quorum
// is also a quorum). It generalizes weighted voting: quorum structures
// such as grids and trees that no vote assignment realizes are
// expressible here.
type ExplicitAssignment struct {
	sites    int
	initials map[string][]SiteSet
	finals   map[string][]SiteSet
}

// NewExplicit builds an explicit assignment over the given number of
// sites. It panics on empty quorum lists, empty quorums, or quorums
// mentioning out-of-range sites.
func NewExplicit(sites int, initials, finals map[string][]SiteSet) *ExplicitAssignment {
	if sites <= 0 || sites > 64 {
		panic(fmt.Sprintf("quorum: %d sites outside (0,64]", sites))
	}
	all := Sites()
	for i := 0; i < sites; i++ {
		all |= 1 << uint(i)
	}
	check := func(kind string, m map[string][]SiteSet) {
		for op, qs := range m {
			if len(qs) == 0 {
				panic(fmt.Sprintf("quorum: %s quorum list for %q is empty", kind, op))
			}
			for _, q := range qs {
				if q == 0 {
					panic(fmt.Sprintf("quorum: empty %s quorum for %q", kind, op))
				}
				if !q.SubsetOf(all) {
					panic(fmt.Sprintf("quorum: %s quorum %v for %q exceeds %d sites", kind, q, op, sites))
				}
			}
		}
	}
	check("initial", initials)
	check("final", finals)
	return &ExplicitAssignment{sites: sites, initials: copyQuorums(initials), finals: copyQuorums(finals)}
}

func copyQuorums(m map[string][]SiteSet) map[string][]SiteSet {
	out := make(map[string][]SiteSet, len(m))
	for k, v := range m {
		out[k] = append([]SiteSet(nil), v...)
	}
	return out
}

// Sites returns the site count.
func (a *ExplicitAssignment) Sites() int { return a.sites }

// Ops returns the operation names with declared quorums (initial or
// final), sorted.
func (a *ExplicitAssignment) Ops() []string {
	names := map[string]bool{}
	for op := range a.initials {
		names[op] = true
	}
	for op := range a.finals {
		names[op] = true
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Intersects reports whether every initial quorum for invOp intersects
// every final quorum for finalOp — the condition defining
// inv(invOp) Q finalOp (Section 3.1).
func (a *ExplicitAssignment) Intersects(invOp, finalOp string) bool {
	is, ok1 := a.initials[invOp]
	fs, ok2 := a.finals[finalOp]
	if !ok1 || !ok2 {
		return false
	}
	for _, i := range is {
		for _, f := range fs {
			if !i.Intersects(f) {
				return false
			}
		}
	}
	return true
}

// Relation derives the quorum intersection relation this assignment
// realizes.
func (a *ExplicitAssignment) Relation() Relation {
	names := map[string]bool{}
	for op := range a.initials {
		names[op] = true
	}
	for op := range a.finals {
		names[op] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	var pairs []Pair
	for _, inv := range sorted {
		for _, op := range sorted {
			if a.Intersects(inv, op) {
				pairs = append(pairs, Pair{Inv: inv, Op: op})
			}
		}
	}
	return NewRelation(pairs...)
}

// HasQuorum reports whether the alive sites contain both an initial and
// a final quorum for op.
func (a *ExplicitAssignment) HasQuorum(op string, alive []bool) bool {
	var up SiteSet
	for i, u := range alive {
		if u && i < a.sites {
			up |= 1 << uint(i)
		}
	}
	return someSubset(a.initials[op], up) && someSubset(a.finals[op], up)
}

func someSubset(quorums []SiteSet, up SiteSet) bool {
	for _, q := range quorums {
		if q.SubsetOf(up) {
			return true
		}
	}
	return false
}

// Availability returns the exact probability, under independent site-up
// probability pUp, that op finds both quorums. It enumerates the 2^n
// alive patterns (n ≤ ~20 recommended).
func (a *ExplicitAssignment) Availability(op string, pUp float64) float64 {
	if a.sites > 24 {
		panic(fmt.Sprintf("quorum: exact availability over %d sites; use Monte Carlo", a.sites))
	}
	total := 0.0
	alive := make([]bool, a.sites)
	for mask := 0; mask < 1<<uint(a.sites); mask++ {
		p := 1.0
		for i := 0; i < a.sites; i++ {
			alive[i] = mask&(1<<uint(i)) != 0
			if alive[i] {
				p *= pUp
			} else {
				p *= 1 - pUp
			}
		}
		if a.HasQuorum(op, alive) {
			total += p
		}
	}
	return total
}

// Grid returns the classic grid quorum assignment for a rows×cols
// array of sites: initial quorums are single rows, final quorums are
// single columns, so every initial quorum intersects every final
// quorum with quorum sizes O(√n) — availability structure no vote
// assignment can express.
func Grid(rows, cols int, ops ...string) *ExplicitAssignment {
	if rows <= 0 || cols <= 0 || rows*cols > 64 {
		panic(fmt.Sprintf("quorum: bad grid %dx%d", rows, cols))
	}
	var rowSets, colSets []SiteSet
	for r := 0; r < rows; r++ {
		var s SiteSet
		for c := 0; c < cols; c++ {
			s |= 1 << uint(r*cols+c)
		}
		rowSets = append(rowSets, s)
	}
	for c := 0; c < cols; c++ {
		var s SiteSet
		for r := 0; r < rows; r++ {
			s |= 1 << uint(r*cols+c)
		}
		colSets = append(colSets, s)
	}
	initials := map[string][]SiteSet{}
	finals := map[string][]SiteSet{}
	for _, op := range ops {
		initials[op] = rowSets
		finals[op] = colSets
	}
	return NewExplicit(rows*cols, initials, finals)
}
