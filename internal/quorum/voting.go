package quorum

import (
	"fmt"
	"sort"
	"strings"

	"relaxlattice/internal/history"
)

// OpQuorums gives the weighted-voting thresholds for one operation
// (Gifford 1979): an initial quorum is any site set whose weights sum
// to at least Initial, and a final quorum any set summing to at least
// Final.
type OpQuorums struct {
	Initial int
	Final   int
}

// Voting is a weighted-voting quorum assignment: per-site vote weights
// and per-operation thresholds. It determines which quorum intersection
// constraints hold (Section 3.1) and the availability of each
// operation under independent site failures.
type Voting struct {
	weights []int
	total   int
	ops     map[string]OpQuorums
}

// NewVoting builds a voting assignment. It panics on non-positive
// weights or thresholds outside (0, total] (configuration errors).
func NewVoting(weights []int, ops map[string]OpQuorums) *Voting {
	total := 0
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("quorum: site %d has non-positive weight %d", i, w))
		}
		total += w
	}
	for name, q := range ops {
		if q.Initial <= 0 || q.Initial > total || q.Final <= 0 || q.Final > total {
			panic(fmt.Sprintf("quorum: operation %q thresholds %+v outside (0, %d]", name, q, total))
		}
	}
	copied := make(map[string]OpQuorums, len(ops))
	for k, v := range ops {
		copied[k] = v
	}
	return &Voting{weights: append([]int(nil), weights...), total: total, ops: copied}
}

// Majority returns a uniform-weight assignment over n sites where every
// operation listed needs a majority for both initial and final quorums.
func Majority(n int, opNames ...string) *Voting {
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	maj := n/2 + 1
	ops := make(map[string]OpQuorums, len(opNames))
	for _, name := range opNames {
		ops[name] = OpQuorums{Initial: maj, Final: maj}
	}
	return NewVoting(weights, ops)
}

// Sites returns the number of sites.
func (v *Voting) Sites() int { return len(v.weights) }

// Ops returns the operation names with assigned thresholds, sorted.
func (v *Voting) Ops() []string {
	names := make([]string, 0, len(v.ops))
	for n := range v.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalWeight returns the sum of all vote weights.
func (v *Voting) TotalWeight() int { return v.total }

// Quorums returns the thresholds for an operation; ok is false for
// operations without an assignment.
func (v *Voting) Quorums(op string) (OpQuorums, bool) {
	q, ok := v.ops[op]
	return q, ok
}

// Intersects reports whether every initial quorum for invOp intersects
// every final quorum for finalOp: with weighted voting this holds
// exactly when the thresholds sum to more than the total weight.
func (v *Voting) Intersects(invOp, finalOp string) bool {
	qi, ok1 := v.ops[invOp]
	qf, ok2 := v.ops[finalOp]
	if !ok1 || !ok2 {
		return false
	}
	return qi.Initial+qf.Final > v.total
}

// Relation derives the quorum intersection relation Q realized by this
// assignment over the given operation names: inv(p) Q q for every pair
// whose quorums are forced to intersect.
func (v *Voting) Relation() Relation {
	names := make([]string, 0, len(v.ops))
	for n := range v.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	var pairs []Pair
	for _, inv := range names {
		for _, op := range names {
			if v.Intersects(inv, op) {
				pairs = append(pairs, Pair{Inv: inv, Op: op})
			}
		}
	}
	return NewRelation(pairs...)
}

// Satisfies reports whether the assignment realizes (at least) the
// given intersection relation.
func (v *Voting) Satisfies(rel Relation) bool {
	return rel.IsSubrelationOf(v.Relation())
}

// HasQuorum reports whether the alive site set (by index) can form both
// an initial and a final quorum for op.
func (v *Voting) HasQuorum(op string, alive []bool) bool {
	q, ok := v.ops[op]
	if !ok {
		return false
	}
	w := 0
	for i, a := range alive {
		if a && i < len(v.weights) {
			w += v.weights[i]
		}
	}
	need := q.Initial
	if q.Final > need {
		need = q.Final
	}
	return w >= need
}

// Availability returns the exact probability that operation op can
// find both quorums when each site is independently up with probability
// pUp — the analytic side of the availability/consistency trade-off of
// Section 3.1. It runs a dynamic program over achievable alive weights.
func (v *Voting) Availability(op string, pUp float64) float64 {
	q, ok := v.ops[op]
	if !ok {
		return 0
	}
	need := q.Initial
	if q.Final > need {
		need = q.Final
	}
	// dp[w] = probability the alive weight is exactly w.
	dp := make([]float64, v.total+1)
	dp[0] = 1
	for _, w := range v.weights {
		next := make([]float64, v.total+1)
		for sum, p := range dp {
			if p == 0 {
				continue
			}
			next[sum] += p * (1 - pUp)
			next[sum+w] += p * pUp
		}
		dp = next
	}
	avail := 0.0
	for sum := need; sum <= v.total; sum++ {
		avail += dp[sum]
	}
	return avail
}

// String summarizes the assignment.
func (v *Voting) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "voting(total=%d, weights=%v", v.total, v.weights)
	names := make([]string, 0, len(v.ops))
	for n := range v.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, ", %s=%d/%d", n, v.ops[n].Initial, v.ops[n].Final)
	}
	b.WriteString(")")
	return b.String()
}

// TaxiAssignments returns the four voting assignments of the taxi-queue
// relaxation lattice over n sites: one per subset of {Q₁, Q₂}, chosen
// so each assignment realizes exactly the constraints of its lattice
// element. Smaller quorums mean higher availability; the preferred
// assignment pays for Q₁ ∧ Q₂ with majority Deq quorums and
// complementary Enq quorums (Section 3.3).
func TaxiAssignments(n int) map[string]*Voting {
	if n < 3 {
		panic(fmt.Sprintf("quorum: taxi assignments need ≥ 3 sites, got %d", n))
	}
	maj := n/2 + 1
	one := 1
	return map[string]*Voting{
		// Q1 ∧ Q2: Deq reads a majority and writes a majority; Enq
		// writes enough that Deq's initial majority always sees it.
		"Q1Q2": NewVoting(ones(n), map[string]OpQuorums{
			history.NameEnq: {Initial: one, Final: n - maj + 1},
			history.NameDeq: {Initial: maj, Final: maj},
		}),
		// Q1 only: Deq quorums need not intersect one another, so Deq's
		// initial quorum shrinks below a majority (Q2 is what forces
		// Deq majorities); Q1 is preserved by growing Enq's final
		// quorum to compensate.
		"Q1": NewVoting(ones(n), map[string]OpQuorums{
			history.NameEnq: {Initial: one, Final: n - n/2 + 1},
			history.NameDeq: {Initial: n / 2, Final: one},
		}),
		// Q2 only: Deq sees other Deqs but may miss Enqs.
		"Q2": NewVoting(ones(n), map[string]OpQuorums{
			history.NameEnq: {Initial: one, Final: one},
			history.NameDeq: {Initial: maj, Final: maj},
		}),
		// ∅: everything at any available site.
		"none": NewVoting(ones(n), map[string]OpQuorums{
			history.NameEnq: {Initial: one, Final: one},
			history.NameDeq: {Initial: one, Final: one},
		}),
	}
}

func ones(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
