package quorum

import (
	"sort"
	"strings"

	"relaxlattice/internal/history"
)

// Entry is one log entry: the timestamped record of an operation
// execution (Section 3.1).
type Entry struct {
	TS Timestamp
	Op history.Op
}

// String renders the entry as "1:01 Enq(x)/Ok()".
func (e Entry) String() string { return e.TS.String() + " " + e.Op.String() }

// Log is a replicated object's representation: a sequence of entries
// sorted by timestamp with no duplicate timestamps. The zero value is
// the empty log. Logs are observably immutable; operations return new
// logs.
//
// Internally, logs derived by Append share one backing array and track
// the claimed tail through a high-water mark, so a chain of appends —
// the dominant pattern in quorum propagation, where every site log is
// the latest extension of an earlier view — extends in place with
// amortized-constant allocation instead of copying the whole log per
// entry. The first append past a fork (two logs extending the same
// prefix) falls back to a copy, preserving value semantics. The mark
// makes Append on aliases of one log unsafe across goroutines; the
// runtimes never share a Log between goroutines (each cluster runs on
// a single discrete-event engine), and everything else on a Log is a
// pure read.
type Log struct {
	entries []Entry
	// hwm is the number of entries of the backing array already claimed
	// by some log in this family; nil for logs built before tracking
	// (subslices, the zero value), which always copy on append.
	hwm *int
}

// growCap returns the backing-array capacity for a log of n entries:
// exact for tiny logs, then 1.5× headroom so append chains reallocate
// O(log n) times instead of every entry.
func growCap(n int) int {
	if n < 8 {
		return n
	}
	return n + n/2
}

// fresh wraps entries in a Log owning its backing array's tail.
func fresh(entries []Entry) Log {
	n := len(entries)
	return Log{entries: entries, hwm: &n}
}

type byTS []Entry

func (s byTS) Len() int           { return len(s) }
func (s byTS) Less(i, j int) bool { return s[i].TS.Less(s[j].TS) }
func (s byTS) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// LogOf builds a log from entries (sorted and deduplicated by
// timestamp; for duplicate timestamps the first occurrence wins).
func LogOf(entries ...Entry) Log {
	sorted := append([]Entry(nil), entries...)
	sort.Stable(byTS(sorted))
	return fresh(dedup(sorted))
}

// dedup removes adjacent duplicate timestamps in place (first wins).
func dedup(sorted []Entry) []Entry {
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || sorted[i-1].TS != e.TS {
			out = append(out, e)
		}
	}
	return out
}

// Append returns the log extended with a new entry (inserted in
// timestamp order; an entry whose timestamp is already present is
// discarded as a duplicate). Appending past the maximal timestamp —
// every freshly ticked entry — extends the shared backing array in
// place when this log is the family's latest extension (the high-water
// mark matches), and otherwise takes one amortized-growth copy.
func (l Log) Append(e Entry) Log {
	if n := len(l.entries); n == 0 || l.entries[n-1].TS.Less(e.TS) {
		if l.hwm != nil && *l.hwm == n && n < cap(l.entries) {
			ext := l.entries[:n+1]
			ext[n] = e
			*l.hwm = n + 1
			return Log{entries: ext, hwm: l.hwm}
		}
		out := make([]Entry, n+1, growCap(n+1))
		copy(out, l.entries)
		out[n] = e
		return fresh(out)
	}
	return merge2(l, Log{entries: []Entry{e}})
}

// Merge merges logs in timestamp order, discarding duplicates — the
// fundamental view-construction step of quorum consensus (Section 3.1).
// Inputs are already sorted (a Log invariant), so this is a linear
// k-way merge.
func Merge(logs ...Log) Log {
	switch len(logs) {
	case 0:
		return Log{}
	case 1:
		return logs[0] // immutable, safe to share
	}
	acc := logs[0]
	for _, l := range logs[1:] {
		acc = merge2(acc, l)
	}
	return acc
}

// containsAll reports whether every timestamp of sub appears in sup
// (both sorted). Two-pointer walk, no allocation. Slices sharing a
// backing array short-circuit: logs are immutable, so sub starting at
// sup's first element is literally a prefix of sup.
func containsAll(sup, sub []Entry) bool {
	if len(sub) > len(sup) {
		return false
	}
	if len(sub) == 0 || &sup[0] == &sub[0] {
		return true
	}
	j := 0
	for i := range sub {
		for j < len(sup) && sup[j].TS.Less(sub[i].TS) {
			j++
		}
		if j >= len(sup) || sup[j].TS != sub[i].TS {
			return false
		}
		j++
	}
	return true
}

// merge2 merges two sorted logs, discarding duplicate timestamps (left
// wins). When one side already contains the other — the overwhelmingly
// common case in quorum propagation, where a site receives a view that
// grew from its own log — the containing side is returned as-is with
// its high-water mark intact, so the chain of appends it anchors keeps
// extending in place. Logs are observably immutable, so sharing is
// safe, and the no-op merge allocates nothing. A genuine interleaving
// allocates once with growth headroom for the appends that typically
// follow a view assembly.
func merge2(la, lb Log) Log {
	a, b := la.entries, lb.entries
	if len(a) == 0 {
		return lb
	}
	if len(b) == 0 {
		return la
	}
	if containsAll(b, a) {
		return lb
	}
	if containsAll(a, b) {
		return la
	}
	// Quorum merges are mostly-overlapping unions (the sites share the
	// propagated prefix), so a len(a)+len(b) allocation would be ~2× the
	// result. Pre-size to the larger side plus a sliver of the smaller;
	// a genuinely disjoint merge grows once more via append.
	capHint, small := len(a), len(b)
	if small > capHint {
		capHint, small = small, capHint
	}
	out := make([]Entry, 0, capHint+small/4+4)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].TS.Less(b[j].TS):
			out = append(out, a[i])
			i++
		case b[j].TS.Less(a[i].TS):
			out = append(out, b[j])
			j++
		default: // equal timestamps: keep one
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return fresh(out)
}

// Len returns the number of entries.
func (l Log) Len() int { return len(l.entries) }

// Entry returns the i-th entry in timestamp order.
func (l Log) Entry(i int) Entry { return l.entries[i] }

// Entries returns a copy of the entries in timestamp order.
func (l Log) Entries() []Entry { return append([]Entry(nil), l.entries...) }

// History reconstructs the object history by reading the entries in
// timestamp order.
func (l Log) History() history.History {
	h := make(history.History, 0, len(l.entries))
	for _, e := range l.entries {
		h = append(h, e.Op)
	}
	return h
}

// Contains reports whether the log holds an entry with timestamp ts.
func (l Log) Contains(ts Timestamp) bool {
	i := sort.Search(len(l.entries), func(i int) bool { return !l.entries[i].TS.Less(ts) })
	return i < len(l.entries) && l.entries[i].TS == ts
}

// MaxTS returns the largest timestamp in the log; ok is false when the
// log is empty.
func (l Log) MaxTS() (Timestamp, bool) {
	if len(l.entries) == 0 {
		return Timestamp{}, false
	}
	return l.entries[len(l.entries)-1].TS, true
}

// Equal reports whether two logs hold the same entries.
func (l Log) Equal(other Log) bool {
	if len(l.entries) != len(other.entries) {
		return false
	}
	for i := range l.entries {
		if l.entries[i].TS != other.entries[i].TS || !l.entries[i].Op.Equal(other.entries[i].Op) {
			return false
		}
	}
	return true
}

// String renders the log one entry per line.
func (l Log) String() string {
	var b strings.Builder
	for i, e := range l.entries {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// HasPrefix reports whether p's entries are exactly the first p.Len()
// entries of l. Entries are compared by timestamp alone: quorum
// timestamps are globally unique (each entry is created once, under a
// fresh Lamport tick), so an equal timestamp implies an equal entry.
// This is the O(|p|) test behind incremental view evaluation — a view
// that extends a previously evaluated view can be folded from the
// cached states instead of replayed from scratch.
func (l Log) HasPrefix(p Log) bool {
	if len(p.entries) > len(l.entries) {
		return false
	}
	for i := range p.entries {
		if l.entries[i].TS != p.entries[i].TS {
			return false
		}
	}
	return true
}
