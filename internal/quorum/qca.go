package quorum

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// HistState is the state of a quorum consensus automaton: "the
// automaton's state is simply the history it has accepted so far"
// (Section 3.2).
type HistState struct {
	H history.History
}

// Key returns the canonical encoding.
func (hs HistState) Key() string { return "H:" + hs.H.Key() }

// String renders the history.
func (hs HistState) String() string { return hs.H.String() }

// QCA is the quorum consensus automaton QCA(A, Q, η) of Section 3.2.
// Its operations are those of the base automaton A; it accepts H·p when
// there exists a Q-view G of H for p, a state s ∈ η(G), and a state
// s' ∈ η(G·p) with p.pre_A(s) ∧ p.post_A(s, s'). With Q a serial
// dependency relation for A and any η (which must agree with δ* on
// L(A)), L(QCA(A,Q,η)) = L(A); weaker Q accept more histories.
type QCA struct {
	name string
	base *automaton.Spec
	rel  Relation
	fold *FoldEval
	eta  Eval
}

var _ automaton.Automaton = (*QCA)(nil)

// NewQCA builds QCA(base, rel, eta) with eta given in fold form (see
// FoldEval). A nil eta defaults to δ* of base (the two-parameter
// QCA(A, Q) of the paper).
func NewQCA(name string, base *automaton.Spec, rel Relation, eta *FoldEval) *QCA {
	if eta == nil {
		eta = DeltaFold(base)
	}
	return &QCA{name: name, base: base, rel: rel, fold: eta, eta: eta.Eval}
}

// Name returns the automaton's name.
func (q *QCA) Name() string { return q.name }

// Base returns the underlying simple object automaton A.
func (q *QCA) Base() *automaton.Spec { return q.base }

// Relation returns the quorum intersection relation Q.
func (q *QCA) Relation() Relation { return q.rel }

// Fold returns the evaluation function η in fold form.
func (q *QCA) Fold() *FoldEval { return q.fold }

// Init returns the empty-history state.
func (q *QCA) Init() value.Value { return HistState{H: history.Empty} }

// Step accepts op exactly when some Q-view justifies it, moving to the
// extended history.
func (q *QCA) Step(s value.Value, op history.Op) []value.Value {
	hs, ok := s.(HistState)
	if !ok {
		return nil
	}
	if !q.Justified(hs.H, op) {
		return nil
	}
	return []value.Value{HistState{H: hs.H.Append(op)}}
}

// Justified reports whether some Q-view G of h for op satisfies op's
// pre- and postconditions under η: ∃G, ∃s ∈ η(G), ∃s' ∈ η(G·op) with
// pre(s) ∧ post(s, s').
func (q *QCA) Justified(h history.History, op history.Op) bool {
	found := false
	q.rel.Views(h, op.Inv(), func(g history.History) bool {
		before := q.eta(g)
		if len(before) == 0 {
			return true // keep searching other views
		}
		after := q.eta(g.Append(op))
		if len(after) == 0 {
			return true
		}
		for _, s := range before {
			if !q.base.PreHolds(s, op) {
				continue
			}
			for _, s2 := range after {
				if q.base.PostHolds(s, op, s2) {
					found = true
					return false // stop enumeration
				}
			}
		}
		return true
	})
	return found
}

// Witness returns a Q-view of h justifying op, if one exists. It is
// useful for explaining why a weakly consistent execution was accepted.
func (q *QCA) Witness(h history.History, op history.Op) (history.History, bool) {
	var witness history.History
	found := false
	q.rel.Views(h, op.Inv(), func(g history.History) bool {
		before := q.eta(g)
		after := q.eta(g.Append(op))
		for _, s := range before {
			if !q.base.PreHolds(s, op) {
				continue
			}
			for _, s2 := range after {
				if q.base.PostHolds(s, op, s2) {
					witness = g
					found = true
					return false
				}
			}
		}
		return true
	})
	return witness, found
}
