package quorum

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

func q1q2() Relation { return Q1().Union(Q2()) }

func TestPQEval(t *testing.T) {
	h := history.History{history.Enq(1), history.Enq(3), history.DeqOk(3)}
	got := PQEval(h)
	if len(got) != 1 || !got[0].(value.Bag).Equal(value.BagOf(1)) {
		t.Errorf("PQEval = %v", got)
	}
	// η is defined for arbitrary sequences, including illegal PQ
	// histories such as dequeuing a lower-priority item first.
	h = history.History{history.Enq(1), history.Enq(3), history.DeqOk(1)}
	got = PQEval(h)
	if len(got) != 1 || !got[0].(value.Bag).Equal(value.BagOf(3)) {
		t.Errorf("PQEval on illegal history = %v", got)
	}
	// Deleting an absent element leaves the bag unchanged.
	h = history.History{history.DeqOk(5)}
	got = PQEval(h)
	if len(got) != 1 || !got[0].(value.Bag).IsEmp() {
		t.Errorf("PQEval del-absent = %v", got)
	}
	if PQEval(history.History{history.Credit(1)}) != nil {
		t.Errorf("PQEval should reject foreign ops")
	}
}

// η agrees with δ* on legal priority-queue histories (the defining
// requirement of an evaluation function, Section 3.2).
func TestPQEvalAgreesWithDeltaStar(t *testing.T) {
	pq := specs.PriorityQueue()
	for _, h := range automaton.Language(pq, history.QueueAlphabet(3), 5) {
		states := automaton.StatesAfter(pq, h)
		if len(states) != 1 {
			t.Fatalf("PQ should be deterministic: %v -> %v", h, states)
		}
		eta := PQEval(h)
		if len(eta) != 1 || eta[0].Key() != states[0].Key() {
			t.Errorf("η(%v) = %v, δ* = %v", h, eta, states)
		}
	}
}

func TestPQEvalPrime(t *testing.T) {
	// Deq(1) with 3 pending drops the skipped-over 3.
	h := history.History{history.Enq(1), history.Enq(3), history.DeqOk(1)}
	got := PQEvalPrime(h)
	if len(got) != 1 || !got[0].(value.Bag).IsEmp() {
		t.Errorf("η′ = %v, want empty", got)
	}
	// On legal PQ histories η′ agrees with δ* too.
	pq := specs.PriorityQueue()
	for _, h := range automaton.Language(pq, history.QueueAlphabet(3), 5) {
		states := automaton.StatesAfter(pq, h)
		eta := PQEvalPrime(h)
		if len(eta) != 1 || eta[0].Key() != states[0].Key() {
			t.Errorf("η′(%v) = %v, δ* = %v", h, eta, states)
		}
	}
	if PQEvalPrime(history.History{history.Credit(1)}) != nil {
		t.Errorf("η′ should reject foreign ops")
	}
}

func TestAccountEval(t *testing.T) {
	h := history.History{history.Credit(5), history.DebitOk(3), history.DebitOver(9)}
	got := AccountEval(h)
	if len(got) != 1 || got[0].(value.Account).Balance != 2 {
		t.Errorf("AccountEval = %v", got)
	}
	// Arbitrary sequences are evaluated, even "overdrawing" ones.
	h = history.History{history.DebitOk(3)}
	got = AccountEval(h)
	if len(got) != 1 || got[0].(value.Account).Balance != -3 {
		t.Errorf("AccountEval = %v", got)
	}
	if AccountEval(history.History{history.Enq(1)}) != nil {
		t.Errorf("AccountEval should reject foreign ops")
	}
}

func TestQCAWithFullRelationIsPQ(t *testing.T) {
	// {Q1, Q2} is a serial dependency relation for PQ, so
	// L(QCA(PQ, {Q1,Q2}, η)) = L(PQ) — one-copy serializability.
	qca := NewQCA("QCA-PQ-full", specs.PriorityQueue(), q1q2(), PQFold())
	res := IsOneCopySerializable(qca, history.QueueAlphabet(2), 5)
	if !res.Equal {
		t.Fatalf("not one-copy serializable: onlyQCA=%v onlyPQ=%v", res.OnlyA, res.OnlyB)
	}
}

func TestQCAQ1AcceptsDuplicatesInOrder(t *testing.T) {
	qca := NewQCA("QCA-PQ-Q1", specs.PriorityQueue(), Q1(), PQFold())
	// A view may omit the earlier Deq, so the request is serviced twice.
	dup := history.History{history.Enq(3), history.DeqOk(3), history.DeqOk(3)}
	if !automaton.Accepts(qca, dup) {
		t.Errorf("Q1 relaxation should accept duplicate service")
	}
	// But never out of order: every view contains all Enqs.
	ooo := history.History{history.Enq(1), history.Enq(3), history.DeqOk(1)}
	if automaton.Accepts(qca, ooo) {
		t.Errorf("Q1 relaxation must not service out of order")
	}
	// Witness explains the duplicate: the justifying view omits a Deq.
	w, ok := qca.Witness(dup.Prefix(2), history.DeqOk(3))
	if !ok {
		t.Fatalf("no witness")
	}
	if !w.Equal(history.History{history.Enq(3)}) {
		t.Errorf("witness = %v", w)
	}
}

func TestQCAQ2AcceptsOutOfOrderOnly(t *testing.T) {
	qca := NewQCA("QCA-PQ-Q2", specs.PriorityQueue(), Q2(), PQFold())
	// A view may omit Enq(3), so 1 is dequeued out of order.
	ooo := history.History{history.Enq(1), history.Enq(3), history.DeqOk(1)}
	if !automaton.Accepts(qca, ooo) {
		t.Errorf("Q2 relaxation should accept out-of-order service")
	}
	// But never twice: all Deqs are visible to every Deq view.
	dup := history.History{history.Enq(3), history.DeqOk(3), history.DeqOk(3)}
	if automaton.Accepts(qca, dup) {
		t.Errorf("Q2 relaxation must not service twice")
	}
}

func TestQCAEmptyRelationDegenerate(t *testing.T) {
	qca := NewQCA("QCA-PQ-none", specs.PriorityQueue(), NewRelation(), PQFold())
	both := history.History{history.Enq(1), history.Enq(3), history.DeqOk(1), history.DeqOk(1)}
	if !automaton.Accepts(qca, both) {
		t.Errorf("∅ relaxation should accept duplicated out-of-order service")
	}
	// Still never returns an element that was never enqueued.
	bad := history.History{history.Enq(1), history.DeqOk(2)}
	if automaton.Accepts(qca, bad) {
		t.Errorf("∅ relaxation returned a never-enqueued element")
	}
}

func TestQCAStepAndState(t *testing.T) {
	qca := NewQCA("QCA", specs.PriorityQueue(), q1q2(), nil) // nil η defaults to δ*
	s0 := qca.Init()
	next := qca.Step(s0, history.Enq(1))
	if len(next) != 1 {
		t.Fatalf("Step = %v", next)
	}
	hs := next[0].(HistState)
	if !hs.H.Equal(history.History{history.Enq(1)}) {
		t.Errorf("state = %v", hs)
	}
	if hs.Key() == s0.Key() {
		t.Errorf("key collision")
	}
	if hs.String() != "Enq(1)/Ok()" {
		t.Errorf("String = %q", hs.String())
	}
	// Foreign state type is rejected gracefully.
	if qca.Step(value.EmptyBag(), history.Enq(1)) != nil {
		t.Errorf("foreign state accepted")
	}
	if qca.Base() == nil || qca.Relation().String() == "∅" || qca.Name() != "QCA" {
		t.Errorf("accessors wrong")
	}
	// With δ* as η, relaxed acceptance is still justified only by legal
	// PQ views.
	if _, ok := qca.Witness(history.History{history.Enq(1)}, history.DeqOk(2)); ok {
		t.Errorf("witness for illegal op")
	}
}

func TestSerialDependencyQ1Q2ForPQ(t *testing.T) {
	ok, v := IsSerialDependency(specs.PriorityQueue(), q1q2(), history.QueueAlphabet(2), 4)
	if !ok {
		t.Fatalf("{Q1,Q2} should be a serial dependency relation for PQ: %v", v)
	}
}

func TestSerialDependencyQ1AloneFailsForPQ(t *testing.T) {
	ok, v := IsSerialDependency(specs.PriorityQueue(), Q1(), history.QueueAlphabet(2), 4)
	if ok {
		t.Fatalf("Q1 alone should not be a serial dependency relation for PQ")
	}
	if v == nil || v.String() == "" {
		t.Errorf("missing violation detail")
	}
}

// Q₁ is a serial dependency relation for MPQ — the key lemma in the
// proof of Theorem 4.
func TestSerialDependencyQ1ForMPQ(t *testing.T) {
	ok, v := IsSerialDependency(specs.MultiPriorityQueue(), Q1(), history.QueueAlphabet(2), 4)
	if !ok {
		t.Fatalf("Q1 should be a serial dependency relation for MPQ: %v", v)
	}
}

// {Q1,Q2} is minimal for PQ: dropping either pair breaks the property
// (Section 3.3: the constraints are necessary and sufficient).
func TestMinimality(t *testing.T) {
	wit := MinimalityWitness(specs.PriorityQueue(), q1q2(), history.QueueAlphabet(2), 4)
	if len(wit) != 2 {
		t.Fatalf("witness map = %v", wit)
	}
	for _, v := range wit {
		if v.StillSerial {
			t.Errorf("dropping %v kept the serial dependency property; relation not minimal", v.Dropped)
		}
	}
}

func TestFIFOEvalInPackage(t *testing.T) {
	h := history.History{history.Enq(1), history.Enq(1), history.DeqOk(1)}
	got := FIFOEval(h)
	if len(got) != 1 || !got[0].(value.Seq).Equal(value.SeqOf(1)) {
		t.Errorf("FIFOEval = %v", got)
	}
	// Removing an absent element leaves the queue unchanged.
	got = FIFOEval(history.History{history.DeqOk(5)})
	if len(got) != 1 || !got[0].(value.Seq).IsEmp() {
		t.Errorf("FIFOEval del-absent = %v", got)
	}
	for _, bad := range []history.History{
		{history.Credit(1)},
		{history.MakeOp("Enq", []int{1, 2}, history.Ok, nil)},
		{history.MakeOp("Deq", nil, "Weird", []int{1})},
	} {
		if FIFOEval(bad) != nil {
			t.Errorf("FIFOEval accepted %v", bad)
		}
	}
}
