package value

import "testing"

func TestParseKeyRoundTrip(t *testing.T) {
	values := []Value{
		EmptyBag(),
		BagOf(3, 1, 2),
		EmptySeq(),
		SeqOf(2, 1, 3),
		EmptySet(),
		SetOf(1, 2),
		EmptyMPQ(),
		MPQ{Present: BagOf(1, 2), Absent: BagOf(3)},
		EmptyStutQ(),
		StutQ{Items: SeqOf(4, 5), Count: 2},
		EmptySSQ(),
		EmptySSQ().Ins(1).Ins(2).Stutter(0),
		Account{Balance: 17},
		EmptyServedSeq(),
		EmptyServedSeq().Append(1).Append(2).Serve(0),
	}
	for _, v := range values {
		got, err := ParseKey(v.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", v.Key(), err)
		}
		if got.Key() != v.Key() {
			t.Fatalf("round trip of %q produced %q", v.Key(), got.Key())
		}
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "X[1]", "B[1", "B[x]", "MPQ{p:B[1]}", "StQ{Q[1]}",
		"SSQ{Q[1],c[0 0]}", "Acct{x}", "SV[1 y]",
	} {
		if _, err := ParseKey(s); err == nil {
			t.Fatalf("ParseKey(%q) accepted malformed input", s)
		}
	}
}
