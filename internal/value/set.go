package value

import (
	"sort"
	"strings"
)

// Set is a finite set of elements (the Set trait imported by the
// semiqueue trait of Figure 4-1 as SetE). Set is immutable; its
// canonical form keeps elements sorted ascending without duplicates.
type Set struct {
	items []Elem // sorted ascending, unique
}

// EmptySet returns the empty set.
func EmptySet() Set { return Set{} }

// SetOf builds a set from the given elements, discarding duplicates.
func SetOf(elems ...Elem) Set {
	sorted := sortedCopy(elems)
	out := sorted[:0]
	for i, e := range sorted {
		if i == 0 || sorted[i-1] != e {
			out = append(out, e)
		}
	}
	return Set{items: out}
}

// Add returns s ∪ {e}.
func (s Set) Add(e Elem) Set {
	if s.Contains(e) {
		return s
	}
	return SetOf(append(copyElems(s.items), e)...)
}

// Contains reports e ∈ s.
func (s Set) Contains(e Elem) bool {
	i := sort.Search(len(s.items), func(i int) bool { return s.items[i] >= e })
	return i < len(s.items) && s.items[i] == e
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return SetOf(append(copyElems(s.items), t.items...)...)
}

// Size returns |s|.
func (s Set) Size() int { return len(s.items) }

// Elems returns the elements in ascending order (a copy).
func (s Set) Elems() []Elem { return copyElems(s.items) }

// Equal reports set equality.
func (s Set) Equal(other Set) bool { return s.Key() == other.Key() }

// Key returns the canonical encoding.
func (s Set) Key() string { return "S" + elemsKey(s.items) }

// String renders the set as e.g. "{1 3}".
func (s Set) String() string {
	return "{" + strings.Trim(elemsKey(s.items), "[]") + "}"
}
