package value

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := SetOf(3, 1, 3, 2)
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if !s.Contains(1) || !s.Contains(3) || s.Contains(4) {
		t.Errorf("Contains wrong: %v", s)
	}
	if got := s.Add(4); got.Size() != 4 || !got.Contains(4) {
		t.Errorf("Add = %v", got)
	}
	if got := s.Add(1); !got.Equal(s) {
		t.Errorf("Add of existing changed set: %v", got)
	}
	if !s.Union(SetOf(4, 5)).Equal(SetOf(1, 2, 3, 4, 5)) {
		t.Errorf("Union wrong")
	}
	if !EmptySet().Equal(SetOf()) {
		t.Errorf("empty sets differ")
	}
}

// Set laws: union is commutative, associative, idempotent.
func TestSetUnionLaws(t *testing.T) {
	setFrom := func(xs []uint8) Set {
		s := EmptySet()
		for _, x := range xs {
			s = s.Add(Elem(x % 8))
		}
		return s
	}
	f := func(a, b, c []uint8) bool {
		A, B, C := setFrom(a), setFrom(b), setFrom(c)
		return A.Union(B).Equal(B.Union(A)) &&
			A.Union(B.Union(C)).Equal(A.Union(B).Union(C)) &&
			A.Union(A).Equal(A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPQKeyDistinguishesComponents(t *testing.T) {
	a := MPQ{Present: BagOf(1), Absent: BagOf(2)}
	b := MPQ{Present: BagOf(2), Absent: BagOf(1)}
	if a.Key() == b.Key() {
		t.Errorf("MPQ key collision: %q", a.Key())
	}
	if !strings.Contains(a.String(), "present") {
		t.Errorf("String = %q", a.String())
	}
	if EmptyMPQ().Key() != (MPQ{}).Key() {
		t.Errorf("EmptyMPQ differs from zero value")
	}
}

func TestStutQKey(t *testing.T) {
	a := StutQ{Items: SeqOf(1), Count: 0}
	b := StutQ{Items: SeqOf(1), Count: 1}
	if a.Key() == b.Key() {
		t.Errorf("count must distinguish keys")
	}
	if EmptyStutQ().Count != 0 || !EmptyStutQ().Items.IsEmp() {
		t.Errorf("EmptyStutQ wrong")
	}
}

func TestSSQOperations(t *testing.T) {
	s := EmptySSQ().Ins(1).Ins(2).Ins(3)
	if s.Items.Size() != 3 || len(s.Counts) != 3 {
		t.Fatalf("SSQ after Ins: %v", s)
	}
	st := s.Stutter(1)
	if st.Counts[1] != 1 || s.Counts[1] != 0 {
		t.Errorf("Stutter wrong or mutated receiver: %v / %v", st, s)
	}
	rm := st.Remove(1)
	if rm.Items.Size() != 2 || len(rm.Counts) != 2 {
		t.Errorf("Remove wrong: %v", rm)
	}
	if !rm.Items.Equal(SeqOf(1, 3)) {
		t.Errorf("Remove items: %v", rm.Items)
	}
	if rm.Counts[0] != 0 || rm.Counts[1] != 0 {
		t.Errorf("Remove counts: %v", rm.Counts)
	}
	if s.Key() == st.Key() {
		t.Errorf("counts must distinguish SSQ keys")
	}
}

func TestAccount(t *testing.T) {
	a := NewAccount(10)
	if a.Balance != 10 {
		t.Errorf("Balance = %d", a.Balance)
	}
	if a.Key() == NewAccount(11).Key() {
		t.Errorf("key collision")
	}
	if !strings.Contains(a.String(), "10") {
		t.Errorf("String = %q", a.String())
	}
}

// All Value implementations must have Key() consistent with structural
// equality; spot-check the interface is satisfied.
func TestValueInterfaceCompliance(t *testing.T) {
	values := []Value{
		EmptyBag(), EmptySeq(), EmptySet(), EmptyMPQ(), EmptyStutQ(),
		EmptySSQ(), NewAccount(0),
	}
	seen := map[string]string{}
	for _, v := range values {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision between %T and %s", v, prev)
		}
		seen[v.Key()] = v.String()
	}
}

func TestElemLess(t *testing.T) {
	if !Elem(1).Less(2) || Elem(2).Less(1) || Elem(2).Less(2) {
		t.Errorf("Less wrong")
	}
}
