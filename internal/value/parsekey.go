package value

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseKey inverts Key for every concrete value type in this package:
// ParseKey(v.Key()) reconstructs a value equal to v. It is the decoder
// of the checkpoint format — an automaton frontier serializes its
// state-set classes as canonical Keys, and a restored audit sidecar
// parses them back into live states (see lattice.StepChecker's
// Snapshot/Restore). Unknown or malformed encodings return an error.
func ParseKey(s string) (Value, error) {
	switch {
	case strings.HasPrefix(s, "MPQ{p:") && strings.HasSuffix(s, "}"):
		body := s[len("MPQ{p:") : len(s)-1]
		i := strings.Index(body, ",a:")
		if i < 0 {
			return nil, fmt.Errorf("value: malformed MPQ key %q", s)
		}
		p, err := parseBag(body[:i])
		if err != nil {
			return nil, fmt.Errorf("value: MPQ present: %w", err)
		}
		a, err := parseBag(body[i+len(",a:"):])
		if err != nil {
			return nil, fmt.Errorf("value: MPQ absent: %w", err)
		}
		return MPQ{Present: p, Absent: a}, nil
	case strings.HasPrefix(s, "StQ{") && strings.HasSuffix(s, "}"):
		body := s[len("StQ{") : len(s)-1]
		i := strings.LastIndex(body, ",c:")
		if i < 0 {
			return nil, fmt.Errorf("value: malformed StutQ key %q", s)
		}
		items, err := parseSeq(body[:i])
		if err != nil {
			return nil, fmt.Errorf("value: StutQ items: %w", err)
		}
		count, err := strconv.Atoi(body[i+len(",c:"):])
		if err != nil {
			return nil, fmt.Errorf("value: StutQ count: %w", err)
		}
		return StutQ{Items: items, Count: count}, nil
	case strings.HasPrefix(s, "SSQ{") && strings.HasSuffix(s, "]}"):
		body := s[len("SSQ{") : len(s)-1]
		i := strings.LastIndex(body, ",c[")
		if i < 0 {
			return nil, fmt.Errorf("value: malformed SSQ key %q", s)
		}
		items, err := parseSeq(body[:i])
		if err != nil {
			return nil, fmt.Errorf("value: SSQ items: %w", err)
		}
		counts, err := parseInts(body[i+len(",c[") : len(body)-1])
		if err != nil {
			return nil, fmt.Errorf("value: SSQ counts: %w", err)
		}
		if len(counts) != items.Size() {
			return nil, fmt.Errorf("value: SSQ counts/items mismatch in %q", s)
		}
		return SSQ{Items: items, Counts: counts}, nil
	case strings.HasPrefix(s, "Acct{") && strings.HasSuffix(s, "}"):
		n, err := strconv.Atoi(s[len("Acct{") : len(s)-1])
		if err != nil {
			return nil, fmt.Errorf("value: Account balance: %w", err)
		}
		return Account{Balance: n}, nil
	case strings.HasPrefix(s, "SV[") && strings.HasSuffix(s, "]"):
		body := s[len("SV[") : len(s)-1]
		sv := EmptyServedSeq()
		if body == "" {
			return sv, nil
		}
		for _, f := range strings.Fields(body) {
			served := strings.HasSuffix(f, "*")
			n, err := strconv.Atoi(strings.TrimSuffix(f, "*"))
			if err != nil {
				return nil, fmt.Errorf("value: ServedSeq slot %q: %w", f, err)
			}
			sv = sv.Append(Elem(n))
			if served {
				sv = sv.Serve(sv.Len() - 1)
			}
		}
		return sv, nil
	case strings.HasPrefix(s, "B["):
		return parseBag(s)
	case strings.HasPrefix(s, "Q["):
		return parseSeq(s)
	case strings.HasPrefix(s, "S["):
		elems, err := parseElems(s[1:])
		if err != nil {
			return nil, fmt.Errorf("value: Set: %w", err)
		}
		return SetOf(elems...), nil
	default:
		return nil, fmt.Errorf("value: unrecognized key %q", s)
	}
}

func parseBag(s string) (Bag, error) {
	if !strings.HasPrefix(s, "B") {
		return Bag{}, fmt.Errorf("not a Bag key: %q", s)
	}
	elems, err := parseElems(s[1:])
	if err != nil {
		return Bag{}, err
	}
	return BagOf(elems...), nil
}

func parseSeq(s string) (Seq, error) {
	if !strings.HasPrefix(s, "Q") {
		return Seq{}, fmt.Errorf("not a Seq key: %q", s)
	}
	elems, err := parseElems(s[1:])
	if err != nil {
		return Seq{}, err
	}
	return SeqOf(elems...), nil
}

// parseElems decodes "[1 2 3]" (elemsKey's output).
func parseElems(s string) ([]Elem, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("malformed element list %q", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return nil, nil
	}
	fields := strings.Fields(body)
	out := make([]Elem, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("element %q: %w", f, err)
		}
		out[i] = Elem(n)
	}
	return out, nil
}

// parseInts decodes a space-separated int list ("0 1 2" or "").
func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make([]int, len(fields))
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}
