package value

import (
	"fmt"
	"strconv"
)

// MPQ is the state of the multi-priority queue automaton (Figure 3-3):
// a record of [present: Q, absent: Q] where present holds requests that
// have been enqueued but not dequeued and absent holds requests that
// have already been dequeued at least once.
type MPQ struct {
	Present Bag
	Absent  Bag
}

// EmptyMPQ returns the initial multi-priority-queue value.
func EmptyMPQ() MPQ { return MPQ{} }

// Key returns the canonical encoding.
func (m MPQ) Key() string { return "MPQ{p:" + m.Present.Key() + ",a:" + m.Absent.Key() + "}" }

// String renders the record.
func (m MPQ) String() string {
	return fmt.Sprintf("[present: %s, absent: %s]", m.Present, m.Absent)
}

// StutQ is the state of the stuttering queue automaton (Figure 4-3): a
// record of [items: Q, count: Int], where count is the number of times
// the current front item has been returned by Deq so far.
type StutQ struct {
	Items Seq
	Count int
}

// EmptyStutQ returns the initial stuttering-queue value.
func EmptyStutQ() StutQ { return StutQ{} }

// Key returns the canonical encoding.
func (s StutQ) Key() string { return "StQ{" + s.Items.Key() + ",c:" + strconv.Itoa(s.Count) + "}" }

// String renders the record.
func (s StutQ) String() string {
	return fmt.Sprintf("[items: %s, count: %d]", s.Items, s.Count)
}

// SSQ is the state of the combined semiqueue/stuttering queue
// SSqueue_jk (Section 4.2.2): any of the first k items may be returned
// as many as j times. Counts tracks, per position of Items, how many
// times that item has been returned so far. SSqueue_11 is the FIFO
// queue.
type SSQ struct {
	Items  Seq
	Counts []int // aligned with Items; counts of returns so far
}

// EmptySSQ returns the initial combined-queue value.
func EmptySSQ() SSQ { return SSQ{} }

// Ins appends an item with a zero return count.
func (s SSQ) Ins(e Elem) SSQ {
	return SSQ{Items: s.Items.Ins(e), Counts: append(append([]int(nil), s.Counts...), 0)}
}

// Stutter returns s with the count at position i incremented.
func (s SSQ) Stutter(i int) SSQ {
	counts := append([]int(nil), s.Counts...)
	counts[i]++
	return SSQ{Items: s.Items, Counts: counts}
}

// Remove returns s with the item at position i removed.
func (s SSQ) Remove(i int) SSQ {
	counts := make([]int, 0, len(s.Counts)-1)
	counts = append(counts, s.Counts[:i]...)
	counts = append(counts, s.Counts[i+1:]...)
	return SSQ{Items: s.Items.DelAt(i), Counts: counts}
}

// Key returns the canonical encoding.
func (s SSQ) Key() string {
	k := "SSQ{" + s.Items.Key() + ",c["
	for i, c := range s.Counts {
		if i > 0 {
			k += " "
		}
		k += strconv.Itoa(c)
	}
	return k + "]}"
}

// String renders the record.
func (s SSQ) String() string {
	return fmt.Sprintf("[items: %s, counts: %v]", s.Items, s.Counts)
}

// Account is the state of the bank-account data type of Section 3.4:
// a non-negative balance manipulated by Credit and Debit, where Debit
// raises an exception rather than overdraw.
type Account struct {
	Balance int
}

// NewAccount returns an account with the given opening balance.
func NewAccount(balance int) Account { return Account{Balance: balance} }

// Key returns the canonical encoding.
func (a Account) Key() string { return "Acct{" + strconv.Itoa(a.Balance) + "}" }

// String renders the account.
func (a Account) String() string { return fmt.Sprintf("[balance: %d]", a.Balance) }
