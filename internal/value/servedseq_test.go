package value

import "testing"

func TestServedSeqBasics(t *testing.T) {
	s := EmptyServedSeq()
	if s.Len() != 0 || s.FirstUnserved() != -1 {
		t.Fatalf("empty: %v", s)
	}
	s = s.Append(5).Append(7)
	if s.Len() != 2 || s.Elem(0) != 5 || s.Elem(1) != 7 {
		t.Fatalf("append: %v", s)
	}
	if s.FirstUnserved() != 0 || s.IsServed(0) {
		t.Errorf("unserved tracking wrong")
	}
	served := s.Serve(0)
	if !served.IsServed(0) || served.FirstUnserved() != 1 {
		t.Errorf("serve wrong: %v", served)
	}
	// Immutability.
	if s.IsServed(0) {
		t.Errorf("Serve mutated receiver")
	}
	_ = served.Append(9)
	if served.Len() != 2 {
		t.Errorf("Append mutated receiver")
	}
}

func TestServedSeqKeys(t *testing.T) {
	a := EmptyServedSeq().Append(1).Append(2)
	b := a.Serve(0)
	if a.Key() == b.Key() {
		t.Errorf("served mark must distinguish keys")
	}
	if b.String() != "[1* 2]" {
		t.Errorf("String = %q", b.String())
	}
	if a.Key() == EmptyServedSeq().Append(2).Append(1).Key() {
		t.Errorf("order must distinguish keys")
	}
}
