package value

import (
	"strconv"
	"strings"
)

// ServedSeq is the state of the multi-FIFO queue automaton (the FIFO
// analog of the paper's MPQ, Figure 3-3): the full enqueue sequence
// with a served mark per slot. Enq appends an unserved slot; Deq either
// serves the oldest unserved slot or re-serves an already-served slot
// that is older than every unserved one — requests may be serviced
// multiple times, but never out of arrival order.
type ServedSeq struct {
	elems  []Elem
	served []bool
}

// EmptyServedSeq returns the initial value.
func EmptyServedSeq() ServedSeq { return ServedSeq{} }

// Append adds an unserved slot at the back.
func (s ServedSeq) Append(e Elem) ServedSeq {
	return ServedSeq{
		elems:  append(copyElems(s.elems), e),
		served: append(append([]bool(nil), s.served...), false),
	}
}

// Serve marks slot i served.
func (s ServedSeq) Serve(i int) ServedSeq {
	served := append([]bool(nil), s.served...)
	served[i] = true
	return ServedSeq{elems: s.elems, served: served}
}

// Len returns the number of slots.
func (s ServedSeq) Len() int { return len(s.elems) }

// Elem returns the element in slot i.
func (s ServedSeq) Elem(i int) Elem { return s.elems[i] }

// IsServed reports whether slot i has been served.
func (s ServedSeq) IsServed(i int) bool { return s.served[i] }

// FirstUnserved returns the index of the oldest unserved slot, or -1.
func (s ServedSeq) FirstUnserved() int {
	for i, done := range s.served {
		if !done {
			return i
		}
	}
	return -1
}

// Key returns the canonical encoding.
func (s ServedSeq) Key() string {
	var b strings.Builder
	b.WriteString("SV[")
	for i, e := range s.elems {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(int(e)))
		if s.served[i] {
			b.WriteByte('*')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the sequence with served slots starred.
func (s ServedSeq) String() string { return s.Key()[2:] }
