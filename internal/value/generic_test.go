package value

import (
	"testing"
	"testing/quick"
)

func msFrom(xs []uint8) Multiset[int] {
	m := NewMultiset[int]()
	for _, x := range xs {
		m = m.Ins(int(x % 8))
	}
	return m
}

func TestMultisetMirrorsBag(t *testing.T) {
	// The generic multiset and the Elem-specialized Bag must agree on
	// every operation for the same inputs.
	f := func(xs []uint8, e0 uint8) bool {
		e := int(e0 % 8)
		m := msFrom(xs)
		b := bagFrom(xs)
		if m.Size() != b.Size() || m.IsEmp() != b.IsEmp() {
			return false
		}
		if m.IsIn(e) != b.IsIn(Elem(e)) || m.Count(e) != b.Count(Elem(e)) {
			return false
		}
		mb, okM := m.Best()
		bb, okB := b.Best()
		if okM != okB || (okM && mb != int(bb)) {
			return false
		}
		// del agrees.
		md := m.Del(e)
		bd := b.Del(Elem(e))
		return md.Size() == bd.Size() && md.Count(e) == bd.Count(Elem(e))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultisetAxioms(t *testing.T) {
	f := func(xs []uint8, e0, e10 uint8) bool {
		m := msFrom(xs)
		e, e1 := int(e0%8), int(e10%8)
		// del(ins(m,e),e1) = if e=e1 then m else ins(del(m,e1),e)
		lhs := m.Ins(e).Del(e1)
		var rhs Multiset[int]
		if e == e1 {
			rhs = m
		} else {
			rhs = m.Del(e1).Ins(e)
		}
		if !lhs.Equal(rhs) {
			return false
		}
		// isIn(ins(m,e),e1) = (e=e1) ∨ isIn(m,e1)
		return m.Ins(e).IsIn(e1) == ((e == e1) || m.IsIn(e1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultisetStringTypes(t *testing.T) {
	ms := NewMultiset("b", "a", "b")
	if ms.Count("b") != 2 || !ms.IsIn("a") || ms.IsIn("c") {
		t.Errorf("string multiset wrong: %v", ms)
	}
	best, ok := ms.Best()
	if !ok || best != "b" {
		t.Errorf("Best = %q", best)
	}
	if ms.Key() != NewMultiset("a", "b", "b").Key() {
		t.Errorf("key not canonical")
	}
	empty := NewMultiset[string]()
	if _, ok := empty.Best(); ok {
		t.Errorf("Best of empty")
	}
	if !empty.Del("x").Equal(empty) {
		t.Errorf("del on empty changed it")
	}
	if len(ms.Elems()) != 3 {
		t.Errorf("Elems = %v", ms.Elems())
	}
	if ms.String() == "" {
		t.Errorf("empty String")
	}
}

func TestSequenceGeneric(t *testing.T) {
	q := NewSequence("job-a", "job-b")
	first, ok := q.First()
	if !ok || first != "job-a" {
		t.Fatalf("First = %q", first)
	}
	q2 := q.Rest().Ins("job-c")
	if q2.Size() != 2 || q2.Get(0) != "job-b" || q2.Get(1) != "job-c" {
		t.Errorf("q2 = %v", q2)
	}
	if !q.Equal(NewSequence("job-a", "job-b")) {
		t.Errorf("q mutated")
	}
	if !q.IsIn("job-b") || q.IsIn("job-z") {
		t.Errorf("IsIn wrong")
	}
	empty := NewSequence[string]()
	if !empty.IsEmp() || !empty.Rest().IsEmp() {
		t.Errorf("empty sequence wrong")
	}
	if _, ok := empty.First(); ok {
		t.Errorf("First of empty")
	}
	if q.Key() == NewSequence("job-b", "job-a").Key() {
		t.Errorf("order must distinguish keys")
	}
	if len(q.Elems()) != 2 || q.String() == "" {
		t.Errorf("Elems/String wrong")
	}
}

// The generic sequence mirrors the Elem-specialized Seq.
func TestSequenceMirrorsSeq(t *testing.T) {
	f := func(xs []uint8) bool {
		g := NewSequence[int]()
		s := EmptySeq()
		for _, x := range xs {
			g = g.Ins(int(x % 8))
			s = s.Ins(Elem(x % 8))
		}
		if g.Size() != s.Size() {
			return false
		}
		for i := 0; i < g.Size(); i++ {
			if g.Get(i) != int(s.Get(i)) {
				return false
			}
		}
		gf, okG := g.First()
		sf, okS := s.First()
		if okG != okS || (okG && gf != int(sf)) {
			return false
		}
		return g.Rest().Size() == s.Rest().Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
