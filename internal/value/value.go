// Package value implements the abstract value algebras (Larch traits) of
// Herlihy & Wing (PODC 1987) as immutable Go values with canonical forms:
// Bag (Figure 2-1), FIFO queue sequences (Figure 2-3), priority queues
// (Figure 3-1), multi-priority queues (Figure 3-3), semiqueues
// (Figure 4-1), stuttering queues (Figure 4-3), sets, and bank accounts
// (Section 3.4).
//
// Each trait operator (emp, ins, del, isEmp, isIn, first, rest, best,
// prefix, ...) is a method, and the trait's equational axioms are
// verified by property tests in this package. All types are immutable:
// operations return new values and never mutate the receiver, so values
// can be shared freely across automata and histories.
package value

import (
	"sort"
	"strconv"
	"strings"
)

// Elem is an element value. The paper's traits are generic in an element
// sort E with (for priority queues) an assumed total order; Elem supplies
// that order through ordinary integer comparison, where a larger Elem has
// higher priority.
type Elem int

// Less reports the total order on elements (priority order: e < f means
// f has higher priority).
func (e Elem) Less(f Elem) bool { return e < f }

// Value is implemented by every abstract value in this package and by
// automaton states generally. Key returns a canonical encoding: two
// values are equal exactly when their Keys are equal.
type Value interface {
	Key() string
	String() string
}

func elemsKey(items []Elem) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range items {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.Itoa(int(e)))
	}
	b.WriteByte(']')
	return b.String()
}

func copyElems(items []Elem) []Elem {
	return append([]Elem(nil), items...)
}

func sortedCopy(items []Elem) []Elem {
	out := copyElems(items)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
