package value

import (
	"testing"
	"testing/quick"
)

func seqFrom(xs []uint8) Seq {
	q := EmptySeq()
	for _, x := range xs {
		q = q.Ins(Elem(x % 8))
	}
	return q
}

// FifoQ trait (Figure 2-3) axiom:
// first(ins(q,e)) = if isEmp(q) then e else first(q).
func TestSeqAxiomFirst(t *testing.T) {
	f := func(xs []uint8, e0 uint8) bool {
		q := seqFrom(xs)
		e := Elem(e0 % 8)
		got, ok := q.Ins(e).First()
		if !ok {
			return false
		}
		if q.IsEmp() {
			return got == e
		}
		want, _ := q.First()
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FifoQ trait axiom (intended form; the TR's printing drops the ins):
// rest(ins(q,e)) = if isEmp(q) then emp else ins(rest(q), e).
func TestSeqAxiomRest(t *testing.T) {
	f := func(xs []uint8, e0 uint8) bool {
		q := seqFrom(xs)
		e := Elem(e0 % 8)
		lhs := q.Ins(e).Rest()
		var rhs Seq
		if q.IsEmp() {
			rhs = EmptySeq()
		} else {
			rhs = q.Rest().Ins(e)
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The paper's worked equation: first(ins(ins(emp,3),3)) = 3.
func TestSeqPaperEquation(t *testing.T) {
	q := EmptySeq().Ins(3).Ins(3)
	if e, ok := q.First(); !ok || e != 3 {
		t.Errorf("first = %d, %v", e, ok)
	}
}

func TestSeqFIFOOrder(t *testing.T) {
	q := SeqOf(1, 2, 3)
	var got []Elem
	for !q.IsEmp() {
		e, _ := q.First()
		got = append(got, e)
		q = q.Rest()
	}
	want := []Elem{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

// Inherited Bag axiom on sequences: del removes the most recent
// occurrence (the axiom peels ins from the back).
func TestSeqDelRemovesLatestOccurrence(t *testing.T) {
	q := SeqOf(1, 2, 1, 3)
	got := q.Del(1)
	if !got.Equal(SeqOf(1, 2, 3)) {
		t.Errorf("Del(1) = %v, want <1 2 3>", got)
	}
	if !q.Del(9).Equal(q) {
		t.Errorf("Del of absent element changed seq")
	}
	if !EmptySeq().Del(1).Equal(EmptySeq()) {
		t.Errorf("del(emp,e) != emp")
	}
}

// Del axiom, exactly as inherited:
// del(ins(q,e), e1) = if e = e1 then q else ins(del(q,e1), e).
func TestSeqAxiomDelIns(t *testing.T) {
	f := func(xs []uint8, e0, e10 uint8) bool {
		q := seqFrom(xs)
		e, e1 := Elem(e0%8), Elem(e10%8)
		lhs := q.Ins(e).Del(e1)
		var rhs Seq
		if e == e1 {
			rhs = q
		} else {
			rhs = q.Del(e1).Ins(e)
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Semiqueue trait (Figure 4-1) axiom:
// prefix(q,i) = if i = 0 ∨ isEmp(q) then {} else prefix(rest(q), i-1) ∪ {first(q)}.
func TestSeqAxiomPrefix(t *testing.T) {
	f := func(xs []uint8, i0 uint8) bool {
		q := seqFrom(xs)
		i := int(i0 % 10)
		lhs := q.Prefix(i)
		var rhs Set
		if i == 0 || q.IsEmp() {
			rhs = EmptySet()
		} else {
			first, _ := q.First()
			rhs = q.Rest().Prefix(i - 1).Union(SetOf(first))
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqPrefixExplicit(t *testing.T) {
	q := SeqOf(5, 1, 4, 2)
	tests := []struct {
		i    int
		want Set
	}{
		{0, EmptySet()},
		{1, SetOf(5)},
		{2, SetOf(1, 5)},
		{4, SetOf(1, 2, 4, 5)},
		{99, SetOf(1, 2, 4, 5)},
		{-1, EmptySet()},
	}
	for _, tt := range tests {
		if got := q.Prefix(tt.i); !got.Equal(tt.want) {
			t.Errorf("Prefix(%d) = %v, want %v", tt.i, got, tt.want)
		}
	}
}

func TestSeqDelAt(t *testing.T) {
	q := SeqOf(1, 2, 3)
	if got := q.DelAt(1); !got.Equal(SeqOf(1, 3)) {
		t.Errorf("DelAt(1) = %v", got)
	}
	if got := q.DelAt(0); !got.Equal(SeqOf(2, 3)) {
		t.Errorf("DelAt(0) = %v", got)
	}
	if !q.Equal(SeqOf(1, 2, 3)) {
		t.Errorf("DelAt mutated receiver")
	}
}

func TestSeqGetAndBag(t *testing.T) {
	q := SeqOf(3, 1, 2)
	if q.Get(0) != 3 || q.Get(2) != 2 {
		t.Errorf("Get wrong")
	}
	if !q.Bag().Equal(BagOf(1, 2, 3)) {
		t.Errorf("Bag = %v", q.Bag())
	}
	if !q.IsIn(1) || q.IsIn(9) {
		t.Errorf("IsIn wrong")
	}
}

func TestSeqStringKey(t *testing.T) {
	q := SeqOf(2, 1)
	if q.String() != "<2 1>" {
		t.Errorf("String = %q", q.String())
	}
	if q.Key() == SeqOf(1, 2).Key() {
		t.Errorf("order must distinguish keys")
	}
	// Seq and Bag keys must not collide even with identical contents.
	if q.Key() == BagOf(2, 1).Key() {
		t.Errorf("Seq/Bag key collision")
	}
}

func TestSeqImmutability(t *testing.T) {
	q := SeqOf(1, 2)
	_ = q.Ins(3)
	_ = q.Rest()
	_ = q.Del(1)
	if !q.Equal(SeqOf(1, 2)) {
		t.Errorf("seq mutated: %v", q)
	}
	// Rest must not share a tail that a later Ins could clobber.
	r := q.Rest()
	_ = r.Ins(9)
	if !q.Equal(SeqOf(1, 2)) {
		t.Errorf("seq mutated via rest-append: %v", q)
	}
}
