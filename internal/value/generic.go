package value

import (
	"cmp"
	"fmt"
	"sort"
	"strings"
)

// Multiset is a generic, immutable multiset over any ordered element
// type — the Bag trait of Figure 2-1 generalized the way Larch traits
// are generic in their element sort. Bag is the Elem instantiation used
// by the automata; Multiset is the reusable form for library users.
type Multiset[E cmp.Ordered] struct {
	items []E // sorted ascending
}

// NewMultiset builds a multiset from elements.
func NewMultiset[E cmp.Ordered](elems ...E) Multiset[E] {
	items := append([]E(nil), elems...)
	sort.Slice(items, func(i, j int) bool { return cmp.Less(items[i], items[j]) })
	return Multiset[E]{items: items}
}

func (m Multiset[E]) search(e E) int {
	return sort.Search(len(m.items), func(i int) bool { return !cmp.Less(m.items[i], e) })
}

// Ins returns ins(m, e).
func (m Multiset[E]) Ins(e E) Multiset[E] {
	i := m.search(e)
	out := make([]E, 0, len(m.items)+1)
	out = append(out, m.items[:i]...)
	out = append(out, e)
	out = append(out, m.items[i:]...)
	return Multiset[E]{items: out}
}

// Del returns del(m, e): one occurrence removed, or m unchanged when e
// is absent.
func (m Multiset[E]) Del(e E) Multiset[E] {
	i := m.search(e)
	if i >= len(m.items) || m.items[i] != e {
		return m
	}
	out := make([]E, 0, len(m.items)-1)
	out = append(out, m.items[:i]...)
	out = append(out, m.items[i+1:]...)
	return Multiset[E]{items: out}
}

// IsEmp reports emptiness.
func (m Multiset[E]) IsEmp() bool { return len(m.items) == 0 }

// IsIn reports membership.
func (m Multiset[E]) IsIn(e E) bool {
	i := m.search(e)
	return i < len(m.items) && m.items[i] == e
}

// Count returns e's multiplicity.
func (m Multiset[E]) Count(e E) int {
	n := 0
	for i := m.search(e); i < len(m.items) && m.items[i] == e; i++ {
		n++
	}
	return n
}

// Size returns the total number of elements.
func (m Multiset[E]) Size() int { return len(m.items) }

// Best returns the largest element (the priority-queue best of
// Figure 3-1 under the natural order); ok is false when empty.
func (m Multiset[E]) Best() (e E, ok bool) {
	if len(m.items) == 0 {
		var zero E
		return zero, false
	}
	return m.items[len(m.items)-1], true
}

// Elems returns the elements ascending (a copy).
func (m Multiset[E]) Elems() []E { return append([]E(nil), m.items...) }

// Equal reports multiset equality.
func (m Multiset[E]) Equal(other Multiset[E]) bool {
	if len(m.items) != len(other.items) {
		return false
	}
	for i := range m.items {
		if m.items[i] != other.items[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding.
func (m Multiset[E]) Key() string {
	var b strings.Builder
	b.WriteString("M[")
	for i, e := range m.items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", e)
	}
	b.WriteByte(']')
	return b.String()
}

// String renders the multiset.
func (m Multiset[E]) String() string { return m.Key()[1:] }

// Sequence is a generic, immutable FIFO sequence — the FifoQ trait of
// Figure 2-3 generalized.
type Sequence[E comparable] struct {
	items []E // index 0 = oldest
}

// NewSequence builds a sequence (first argument oldest).
func NewSequence[E comparable](elems ...E) Sequence[E] {
	return Sequence[E]{items: append([]E(nil), elems...)}
}

// Ins appends at the back.
func (q Sequence[E]) Ins(e E) Sequence[E] {
	out := make([]E, 0, len(q.items)+1)
	out = append(out, q.items...)
	out = append(out, e)
	return Sequence[E]{items: out}
}

// First returns the oldest element; ok is false when empty.
func (q Sequence[E]) First() (e E, ok bool) {
	if len(q.items) == 0 {
		var zero E
		return zero, false
	}
	return q.items[0], true
}

// Rest drops the oldest element; rest(emp) = emp.
func (q Sequence[E]) Rest() Sequence[E] {
	if len(q.items) == 0 {
		return q
	}
	return Sequence[E]{items: append([]E(nil), q.items[1:]...)}
}

// IsEmp reports emptiness.
func (q Sequence[E]) IsEmp() bool { return len(q.items) == 0 }

// Size returns the length.
func (q Sequence[E]) Size() int { return len(q.items) }

// Get returns the element at position i (0 = front).
func (q Sequence[E]) Get(i int) E { return q.items[i] }

// IsIn reports membership.
func (q Sequence[E]) IsIn(e E) bool {
	for _, x := range q.items {
		if x == e {
			return true
		}
	}
	return false
}

// Elems returns the elements front-to-back (a copy).
func (q Sequence[E]) Elems() []E { return append([]E(nil), q.items...) }

// Equal reports sequence equality.
func (q Sequence[E]) Equal(other Sequence[E]) bool {
	if len(q.items) != len(other.items) {
		return false
	}
	for i := range q.items {
		if q.items[i] != other.items[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical encoding.
func (q Sequence[E]) Key() string {
	var b strings.Builder
	b.WriteString("G<")
	for i, e := range q.items {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v", e)
	}
	b.WriteByte('>')
	return b.String()
}

// String renders the sequence.
func (q Sequence[E]) String() string { return q.Key()[1:] }
