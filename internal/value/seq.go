package value

// Seq is the sequence carrier for the FIFO-queue trait of Figure 2-3 and
// the semiqueue trait of Figure 4-1: the Bag generators emp/ins renamed
// to sort Q, with the first and rest observers giving insertion order
// (ins appends at the back; first observes the front, i.e. the oldest
// insertion). Seq is immutable.
type Seq struct {
	items []Elem // index 0 = oldest (front of the queue)
}

// EmptySeq returns emp, the empty sequence.
func EmptySeq() Seq { return Seq{} }

// SeqOf builds a sequence with the given insertion order (first argument
// oldest).
func SeqOf(elems ...Elem) Seq {
	return Seq{items: copyElems(elems)}
}

// Ins returns ins(q, e): q with e appended at the back.
func (q Seq) Ins(e Elem) Seq {
	out := make([]Elem, 0, len(q.items)+1)
	out = append(out, q.items...)
	out = append(out, e)
	return Seq{items: out}
}

// First returns first(q), the oldest element. ok is false when q is
// empty (first(emp) is unspecified by the trait).
func (q Seq) First() (e Elem, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0], true
}

// Rest returns rest(q): q without its oldest element; rest(emp) = emp.
func (q Seq) Rest() Seq {
	if len(q.items) == 0 {
		return q
	}
	return Seq{items: copyElems(q.items[1:])}
}

// Del returns del(q, e) per the Bag axioms inherited by FifoQ:
// del(ins(q, e), e1) = if e = e1 then q else ins(del(q, e1), e). Unrolled
// over the generated term, this removes the most recent occurrence of e
// (the axiom peels insertions from the back). del(emp, e) = emp.
func (q Seq) Del(e Elem) Seq {
	for i := len(q.items) - 1; i >= 0; i-- {
		if q.items[i] == e {
			out := make([]Elem, 0, len(q.items)-1)
			out = append(out, q.items[:i]...)
			out = append(out, q.items[i+1:]...)
			return Seq{items: out}
		}
	}
	return q
}

// DelAt returns q with the element at position i (0 = front) removed.
// It is used by operational queue runtimes where a specific occurrence
// is dequeued; it panics when i is out of range.
func (q Seq) DelAt(i int) Seq {
	out := make([]Elem, 0, len(q.items)-1)
	out = append(out, q.items[:i]...)
	out = append(out, q.items[i+1:]...)
	return Seq{items: out}
}

// IsEmp reports isEmp(q).
func (q Seq) IsEmp() bool { return len(q.items) == 0 }

// IsIn reports isIn(q, e).
func (q Seq) IsIn(e Elem) bool {
	for _, x := range q.items {
		if x == e {
			return true
		}
	}
	return false
}

// Size returns the number of elements.
func (q Seq) Size() int { return len(q.items) }

// Get returns the element at position i (0 = front). It panics when i
// is out of range.
func (q Seq) Get(i int) Elem { return q.items[i] }

// Prefix returns prefix(q, i) from the semiqueue trait of Figure 4-1:
// the set of the first min(i, size) elements.
func (q Seq) Prefix(i int) Set {
	if i > len(q.items) {
		i = len(q.items)
	}
	if i < 0 {
		i = 0
	}
	return SetOf(q.items[:i]...)
}

// Bag returns the multiset of q's elements (forgetting order).
func (q Seq) Bag() Bag { return BagOf(q.items...) }

// Elems returns the elements front-to-back (a copy).
func (q Seq) Elems() []Elem { return copyElems(q.items) }

// Equal reports whether two sequences are identical.
func (q Seq) Equal(other Seq) bool { return q.Key() == other.Key() }

// Key returns the canonical encoding.
func (q Seq) Key() string { return "Q" + elemsKey(q.items) }

// String renders the sequence front-to-back, e.g. "<1 2 3>".
func (q Seq) String() string {
	return "<" + trimBrackets(elemsKey(q.items)) + ">"
}

func trimBrackets(s string) string {
	return s[1 : len(s)-1]
}
