package value

import (
	"testing"
	"testing/quick"
)

// bagFrom interprets a byte string as a sequence of ins operations.
func bagFrom(xs []uint8) Bag {
	b := EmptyBag()
	for _, x := range xs {
		b = b.Ins(Elem(x % 8))
	}
	return b
}

func TestBagBasics(t *testing.T) {
	b := EmptyBag()
	if !b.IsEmp() || b.Size() != 0 {
		t.Fatalf("empty bag: %v", b)
	}
	b = b.Ins(3).Ins(1).Ins(3)
	if b.IsEmp() || b.Size() != 3 {
		t.Fatalf("bag after ins: %v", b)
	}
	if !b.IsIn(3) || !b.IsIn(1) || b.IsIn(2) {
		t.Errorf("membership wrong: %v", b)
	}
	if b.Count(3) != 2 || b.Count(1) != 1 || b.Count(9) != 0 {
		t.Errorf("count wrong: %v", b)
	}
}

// The paper's worked equation: del(ins(ins(emp,3),3),3) = ins(emp,3).
func TestBagPaperEquation(t *testing.T) {
	lhs := EmptyBag().Ins(3).Ins(3).Del(3)
	rhs := EmptyBag().Ins(3)
	if !lhs.Equal(rhs) {
		t.Errorf("del(ins(ins(emp,3),3),3) = %v, want %v", lhs, rhs)
	}
}

// Axiom: del(emp, e) = emp.
func TestBagAxiomDelEmp(t *testing.T) {
	for e := Elem(0); e < 5; e++ {
		if !EmptyBag().Del(e).Equal(EmptyBag()) {
			t.Errorf("del(emp, %d) != emp", e)
		}
	}
}

// Axiom: del(ins(b,e), e1) = if e = e1 then b else ins(del(b,e1), e).
func TestBagAxiomDelIns(t *testing.T) {
	f := func(xs []uint8, e0, e10 uint8) bool {
		b := bagFrom(xs)
		e, e1 := Elem(e0%8), Elem(e10%8)
		lhs := b.Ins(e).Del(e1)
		var rhs Bag
		if e == e1 {
			rhs = b
		} else {
			rhs = b.Del(e1).Ins(e)
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Axioms: isEmp(emp) = true; isEmp(ins(b,e)) = false.
func TestBagAxiomIsEmp(t *testing.T) {
	f := func(xs []uint8, e uint8) bool {
		return EmptyBag().IsEmp() && !bagFrom(xs).Ins(Elem(e%8)).IsEmp()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Axioms: isIn(emp,e) = false; isIn(ins(b,e), e1) = (e = e1) ∨ isIn(b, e1).
func TestBagAxiomIsIn(t *testing.T) {
	f := func(xs []uint8, e0, e10 uint8) bool {
		b := bagFrom(xs)
		e, e1 := Elem(e0%8), Elem(e10%8)
		if EmptyBag().IsIn(e) {
			return false
		}
		return b.Ins(e).IsIn(e1) == ((e == e1) || b.IsIn(e1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Multiset semantics: insertion order does not matter.
func TestBagInsertionOrderIrrelevant(t *testing.T) {
	f := func(xs []uint8) bool {
		fwd := bagFrom(xs)
		rev := EmptyBag()
		for i := len(xs) - 1; i >= 0; i-- {
			rev = rev.Ins(Elem(xs[i] % 8))
		}
		return fwd.Equal(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Priority-queue trait (Figure 3-1) axiom:
// best(ins(q,e)) = if isEmp(q) then e else if e > best(q) then e else best(q).
func TestBagAxiomBest(t *testing.T) {
	f := func(xs []uint8, e0 uint8) bool {
		q := bagFrom(xs)
		e := Elem(e0 % 8)
		got, ok := q.Ins(e).Best()
		if !ok {
			return false // ins never empty
		}
		if q.IsEmp() {
			return got == e
		}
		prev, _ := q.Best()
		want := prev
		if e > prev {
			want = e
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBagBestEmpty(t *testing.T) {
	if _, ok := EmptyBag().Best(); ok {
		t.Errorf("best(emp) should not be defined")
	}
}

func TestBagImmutability(t *testing.T) {
	b := BagOf(1, 2, 3)
	_ = b.Ins(4)
	_ = b.Del(2)
	if !b.Equal(BagOf(1, 2, 3)) {
		t.Errorf("bag mutated: %v", b)
	}
	elems := b.Elems()
	elems[0] = 99
	if !b.Equal(BagOf(1, 2, 3)) {
		t.Errorf("bag aliased by Elems: %v", b)
	}
}

func TestBagStringAndKey(t *testing.T) {
	b := BagOf(3, 1, 2)
	if b.String() != "{1 2 3}" {
		t.Errorf("String = %q", b.String())
	}
	if b.Key() != BagOf(2, 3, 1).Key() {
		t.Errorf("Key not canonical")
	}
	if EmptyBag().String() != "{}" {
		t.Errorf("empty String = %q", EmptyBag().String())
	}
}

// Size/Count consistency: Size = Σ_e Count(e).
func TestBagSizeCountConsistent(t *testing.T) {
	f := func(xs []uint8) bool {
		b := bagFrom(xs)
		total := 0
		for e := Elem(0); e < 8; e++ {
			total += b.Count(e)
		}
		return total == b.Size() && b.Size() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
