package value

import (
	"sort"
	"strings"
)

// Bag is the multiset trait of Figure 2-1, extended with the best
// operator of the priority-queue trait (Figure 3-1; best assumes the
// total order on Elem). A Bag is immutable; its canonical form keeps
// elements sorted ascending, which realizes the intended multiset
// semantics of the trait (terms equal up to insertion order denote the
// same value).
type Bag struct {
	items []Elem // sorted ascending
}

// EmptyBag returns emp, the empty bag.
func EmptyBag() Bag { return Bag{} }

// BagOf builds a bag containing the given elements.
func BagOf(elems ...Elem) Bag {
	return Bag{items: sortedCopy(elems)}
}

func (b Bag) search(e Elem) int {
	return sort.Search(len(b.items), func(i int) bool { return b.items[i] >= e })
}

// Ins returns ins(b, e).
func (b Bag) Ins(e Elem) Bag {
	i := b.search(e)
	out := make([]Elem, 0, len(b.items)+1)
	out = append(out, b.items[:i]...)
	out = append(out, e)
	out = append(out, b.items[i:]...)
	return Bag{items: out}
}

// Del returns del(b, e): b with one occurrence of e removed, or b
// unchanged when e is absent (del(emp, e) = emp).
func (b Bag) Del(e Elem) Bag {
	i := b.search(e)
	if i >= len(b.items) || b.items[i] != e {
		return b
	}
	out := make([]Elem, 0, len(b.items)-1)
	out = append(out, b.items[:i]...)
	out = append(out, b.items[i+1:]...)
	return Bag{items: out}
}

// IsEmp reports isEmp(b).
func (b Bag) IsEmp() bool { return len(b.items) == 0 }

// IsIn reports isIn(b, e).
func (b Bag) IsIn(e Elem) bool {
	i := b.search(e)
	return i < len(b.items) && b.items[i] == e
}

// Count returns the multiplicity of e in b.
func (b Bag) Count(e Elem) int {
	n := 0
	for _, x := range b.items {
		if x == e {
			n++
		}
	}
	return n
}

// Size returns the total number of elements (with multiplicity).
func (b Bag) Size() int { return len(b.items) }

// Best returns best(b), the highest-priority (largest) element, per the
// priority-queue trait of Figure 3-1. ok is false when b is empty
// (best(emp) is unspecified by the trait).
func (b Bag) Best() (e Elem, ok bool) {
	if len(b.items) == 0 {
		return 0, false
	}
	return b.items[len(b.items)-1], true
}

// Elems returns the elements in ascending order (a copy).
func (b Bag) Elems() []Elem { return copyElems(b.items) }

// Equal reports whether two bags hold the same multiset.
func (b Bag) Equal(other Bag) bool { return b.Key() == other.Key() }

// Key returns the canonical encoding.
func (b Bag) Key() string { return "B" + elemsKey(b.items) }

// String renders the bag as e.g. "{1 2 2 5}".
func (b Bag) String() string {
	return "{" + strings.Trim(elemsKey(b.items), "[]") + "}"
}
