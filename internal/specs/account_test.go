package specs

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

func TestBankAccount(t *testing.T) {
	checkAccepts(t, BankAccount(), map[string]bool{
		"Credit(5)/Ok() Debit(3)/Ok()":                 true,
		"Credit(5)/Ok() Debit(6)/Over()":               true,  // must bounce
		"Credit(5)/Ok() Debit(6)/Ok()":                 false, // would overdraw
		"Credit(5)/Ok() Debit(3)/Over()":               false, // spurious bounce
		"Debit(1)/Over()":                              true,
		"Debit(1)/Ok()":                                false,
		"Credit(2)/Ok() Credit(3)/Ok() Debit(5)/Ok()":  true,
		"Credit(2)/Ok() Debit(2)/Ok() Debit(1)/Over()": true,
	})
}

func TestSpuriousAccount(t *testing.T) {
	checkAccepts(t, SpuriousAccount(), map[string]bool{
		"Credit(5)/Ok() Debit(3)/Ok()":   true,
		"Credit(5)/Ok() Debit(3)/Over()": true,  // spurious bounce tolerated
		"Credit(5)/Ok() Debit(6)/Ok()":   false, // never overdrawn
		"Debit(1)/Over()":                true,
	})
}

func TestOverdraftAccount(t *testing.T) {
	checkAccepts(t, OverdraftAccount(), map[string]bool{
		"Credit(5)/Ok() Debit(6)/Ok()": true, // overdraft possible
		"Debit(3)/Ok()":                true,
		"Debit(3)/Over()":              true,
	})
}

// The account family is a chain: Account ⊆ Spurious ⊆ Overdraft.
func TestAccountChain(t *testing.T) {
	alphabet := history.AccountAlphabet(2)
	if res := automaton.Compare(BankAccount(), SpuriousAccount(), alphabet, 5); !res.SubsetAB() {
		t.Errorf("Account ⊄ Spurious: %v", res.OnlyA)
	}
	if res := automaton.Compare(SpuriousAccount(), OverdraftAccount(), alphabet, 5); !res.SubsetAB() {
		t.Errorf("Spurious ⊄ Overdraft: %v", res.OnlyA)
	}
	// Strict inclusions.
	if res := automaton.Compare(SpuriousAccount(), BankAccount(), alphabet, 5); res.SubsetAB() {
		t.Errorf("Spurious should not be ⊆ Account")
	}
	if res := automaton.Compare(OverdraftAccount(), SpuriousAccount(), alphabet, 5); res.SubsetAB() {
		t.Errorf("Overdraft should not be ⊆ Spurious")
	}
}

// Spurious account invariant: the balance never goes negative on any
// accepted history.
func TestSpuriousAccountNeverNegative(t *testing.T) {
	alphabet := history.AccountAlphabet(2)
	for _, h := range automaton.Language(SpuriousAccount(), alphabet, 5) {
		for _, s := range automaton.StatesAfter(SpuriousAccount(), h) {
			if s.(value.Account).Balance < 0 {
				t.Fatalf("negative balance after %v", h)
			}
		}
	}
}

func TestAccountMalformedOps(t *testing.T) {
	for _, a := range []automaton.Automaton{BankAccount(), SpuriousAccount(), OverdraftAccount()} {
		bad := []history.Op{
			history.MakeOp("Credit", []int{-1}, history.Ok, nil),
			history.MakeOp("Credit", []int{1}, history.Over, nil),
			history.MakeOp("Debit", []int{1, 2}, history.Ok, nil),
			history.MakeOp("Debit", []int{1}, "Weird", nil),
		}
		for _, op := range bad {
			if automaton.Accepts(a, history.History{history.Credit(5), op}) {
				t.Errorf("%s accepted malformed %v", a.Name(), op)
			}
		}
	}
}
