package specs

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

// These tests mechanize the paper's informal behavioral characterizations
// (Section 3.3 prose and the Figure 5-1 summary) as invariants checked
// over every history in each automaton's bounded language.

// pendingBefore returns, per element, how many enqueues precede index i
// minus how many dequeues of it precede i (clamped at 0 per occurrence
// semantics is not needed for these invariants).
func countsBefore(h history.History, i int) (enq, deq map[int]int) {
	enq, deq = map[int]int{}, map[int]int{}
	for _, op := range h[:i] {
		switch op.Name {
		case history.NameEnq:
			enq[op.Args[0]]++
		case history.NameDeq:
			deq[op.Res[0]]++
		}
	}
	return enq, deq
}

// MPQ: "requests may be serviced multiple times, but customers are
// serviced in turn: no unserviced higher-priority request will ever be
// passed over in favor of an unserviced lower-priority request."
func TestMPQNeverPassesOverHigherPriority(t *testing.T) {
	for _, h := range automaton.Language(MultiPriorityQueue(), history.QueueAlphabet(3), 6) {
		for i, op := range h {
			if op.Name != history.NameDeq {
				continue
			}
			e := op.Res[0]
			enq, deq := countsBefore(h, i)
			for elem, n := range enq {
				unserved := n - deq[elem]
				if unserved > 0 && elem > e {
					t.Fatalf("MPQ passed over unserved %d to serve %d in %v", elem, e, h)
				}
			}
		}
	}
}

// OPQ: "requests may be serviced out of order, but no request will be
// serviced more than once."
func TestOPQNeverDuplicates(t *testing.T) {
	for _, h := range automaton.Language(OutOfOrderQueue(), history.QueueAlphabet(2), 6) {
		for i, op := range h {
			if op.Name != history.NameDeq {
				continue
			}
			e := op.Res[0]
			enq, deq := countsBefore(h, i)
			if deq[e]+1 > enq[e] {
				t.Fatalf("OPQ duplicated %d in %v", e, h)
			}
		}
	}
}

// Semiqueue_k: never duplicates, and "no item will be dequeued out of
// order with respect to more than k items" — each response was within
// the first k of the serialized queue.
func TestSemiqueueBoundedReordering(t *testing.T) {
	const k = 2
	for _, h := range automaton.Language(Semiqueue(k), history.QueueAlphabet(2), 6) {
		// Replay the queue; every Deq must hit one of the first k slots.
		var queue []int
		for _, op := range h {
			switch op.Name {
			case history.NameEnq:
				queue = append(queue, op.Args[0])
			case history.NameDeq:
				e := op.Res[0]
				found := -1
				limit := k
				if len(queue) < limit {
					limit = len(queue)
				}
				for i := 0; i < limit; i++ {
					if queue[i] == e {
						found = i
						break
					}
				}
				if found < 0 {
					t.Fatalf("Semiqueue_%d served %d from beyond the %d-prefix in %v", k, e, k, h)
				}
				queue = append(queue[:found], queue[found+1:]...)
			}
		}
	}
}

// Stuttering_j: "files may be printed multiple times, but files are
// always printed in the order they were enqueued" — collapsing
// consecutive duplicate responses yields a prefix of the enqueue order,
// and no run exceeds j.
func TestStutteringOrderedWithBoundedRuns(t *testing.T) {
	const j = 2
	for _, h := range automaton.Language(StutteringQueue(j), history.QueueAlphabet(2), 6) {
		var enqs, resp []int
		for _, op := range h {
			switch op.Name {
			case history.NameEnq:
				enqs = append(enqs, op.Args[0])
			case history.NameDeq:
				resp = append(resp, op.Res[0])
			}
		}
		// Collapse runs and bound their lengths.
		var collapsed []int
		run := 0
		for i, e := range resp {
			if i > 0 && e == resp[i-1] {
				run++
			} else {
				run = 1
				collapsed = append(collapsed, e)
			}
			if run > j {
				// Runs of equal *values* can exceed j only when the
				// value was enqueued multiple times; with distinct
				// enqueues this is a violation. Verify multiplicity.
				count := 0
				for _, x := range enqs {
					if x == e {
						count++
					}
				}
				if run > j*count {
					t.Fatalf("Stuttering_%d run of %d exceeds bound in %v", j, run, h)
				}
			}
		}
		// With all-distinct enqueues, collapsed responses must follow
		// enqueue order exactly.
		if !hasDuplicates(enqs) {
			for i, e := range collapsed {
				if i >= len(enqs) || enqs[i] != e {
					t.Fatalf("Stuttering_%d served out of order in %v", j, h)
				}
			}
		}
	}
}

func hasDuplicates(xs []int) bool {
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}

// DegenPQ: anything goes except phantom elements — every response was
// enqueued at least once before.
func TestDegenerateNoPhantoms(t *testing.T) {
	for _, h := range automaton.Language(DegeneratePriorityQueue(), history.QueueAlphabet(2), 5) {
		for i, op := range h {
			if op.Name != history.NameDeq {
				continue
			}
			enq, _ := countsBefore(h, i)
			if enq[op.Res[0]] == 0 {
				t.Fatalf("DegenPQ served phantom %d in %v", op.Res[0], h)
			}
		}
	}
}

// MFQueue (extension): requests may be re-served, but never out of
// arrival order — at each Deq(e), every never-served element arrived
// no earlier than some slot holding e... operationally: the oldest
// never-served element's arrival index is ≥ the arrival index of the
// slot being (re-)served. Simplest checkable form: with distinct
// elements, the first services of each element follow arrival order.
func TestMFQueueFirstServicesInArrivalOrder(t *testing.T) {
	for _, h := range automaton.Language(MultiFIFOQueue(), history.QueueAlphabet(3), 6) {
		var arrivals []int
		firstServed := map[int]int{} // elem → order of first service
		next := 0
		distinct := true
		seen := map[int]bool{}
		for _, op := range h {
			switch op.Name {
			case history.NameEnq:
				if seen[op.Args[0]] {
					distinct = false
				}
				seen[op.Args[0]] = true
				arrivals = append(arrivals, op.Args[0])
			case history.NameDeq:
				if _, done := firstServed[op.Res[0]]; !done {
					firstServed[op.Res[0]] = next
					next++
				}
			}
		}
		if !distinct {
			continue
		}
		// First services must be a prefix of arrivals in order.
		for i := 0; i < next; i++ {
			if i >= len(arrivals) || firstServed[arrivals[i]] != i {
				t.Fatalf("MFQueue first services out of arrival order in %v", h)
			}
		}
	}
}
