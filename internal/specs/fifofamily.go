package specs

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// MultiFIFOQueue returns the FIFO analog of the multi-priority queue:
// the behavior of a replicated FIFO queue when the Deq/Deq quorum
// intersection constraint is relaxed. Deq either serves the oldest
// pending request, or re-serves an already-served request that is
// older than every pending one — requests may be serviced multiple
// times, but never out of arrival order. The paper develops this
// construction for priority queues (Theorem 4); the FIFO version is
// verified by the analogous bounded equivalence
// L(QCA(FifoQueue, Q₁, η_fifo)) = L(MultiFIFOQueue) in core.
func MultiFIFOQueue() *automaton.Spec {
	asServed := func(s value.Value) value.ServedSeq { return s.(value.ServedSeq) }
	return automaton.NewSpec("MFQueue", value.EmptyServedSeq(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asServed(s).Append(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				sv := asServed(s)
				first := sv.FirstUnserved()
				var succ []value.Value
				// Serve the oldest pending request.
				if first >= 0 && sv.Elem(first) == e {
					succ = append(succ, sv.Serve(first))
				}
				// Re-serve an older, already-served request. Slots are
				// in arrival order, so "older than every pending one"
				// means any served slot before the first unserved (all
				// served slots when nothing is pending). The queue
				// value is unchanged.
				limit := first
				if limit < 0 {
					limit = sv.Len()
				}
				for i := 0; i < limit; i++ {
					if sv.IsServed(i) && sv.Elem(i) == e {
						succ = append(succ, sv)
						break // the value is unchanged; one witness suffices
					}
				}
				return succ
			},
		},
	)
}
