package specs

import (
	"testing"

	"relaxlattice/internal/history"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry has %d automata", len(all))
	}
	for _, want := range []string{
		"Bag", "FifoQueue", "PQueue", "MPQueue", "OPQueue", "DegenPQueue",
		"Semiqueue_1", "Stuttering_2", "SSqueue_2_2", "MSqueue_2",
		"Account", "SpuriousAccount", "OverdraftAccount",
	} {
		if _, ok := all[want]; !ok {
			t.Errorf("registry missing %q", want)
		}
	}
	// Every automaton accepts the empty history and rejects an unknown
	// operation.
	bogus := history.MakeOp("Bogus", nil, history.Ok, nil)
	for name, a := range all {
		if a.Init() == nil {
			t.Errorf("%s: nil initial state", name)
		}
		if got := a.Step(a.Init(), bogus); got != nil {
			t.Errorf("%s accepted unknown op", name)
		}
	}
}
