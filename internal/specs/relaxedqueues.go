package specs

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// Semiqueue returns the Semiqueue_k automaton of Figure 4-1: a sequence
// where Deq deletes and returns one of the first k items.
//
//	Enq(e)/Ok()  ensures q' = ins(q, e)
//	Deq()/Ok(e)  requires ¬isEmp(q)  ensures q' = del(q, e) ∧ e ∈ prefix(q, k)
//
// Semiqueue(1) is the FIFO queue and Semiqueue(n), for n the maximum
// queue length reached, behaves as a bag. It panics if k < 1.
//
// With duplicate elements, reading del through the Bag axioms inherited
// by the sequence sort would remove the most recently inserted
// occurrence of e — which can sit beyond the prefix and would break the
// paper's claim that Semiqueue_1 is the FIFO queue. Deq therefore
// removes an occurrence of e at a position < k: the occurrence the
// dequeuer actually observed.
func Semiqueue(k int) *automaton.Spec {
	if k < 1 {
		panic(fmt.Sprintf("specs: Semiqueue index k = %d, need k ≥ 1", k))
	}
	return automaton.NewSpec(fmt.Sprintf("Semiqueue_%d", k), value.EmptySeq(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asSeq(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asSeq(s).IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				q := asSeq(s)
				limit := k
				if n := q.Size(); n < limit {
					limit = n
				}
				var succ []value.Value
				for i := 0; i < limit; i++ {
					if q.Get(i) == e {
						succ = append(succ, q.DelAt(i))
					}
				}
				return succ
			},
		},
	)
}

// StutteringQueue returns the Stuttering_j queue automaton of
// Figure 4-3: a FIFO queue whose front item may be returned as many as
// j times. The state records how many times the current front item has
// been returned so far; each Deq returns the front item and either
// keeps it (a stutter, allowed while another return would not exceed j)
// or removes it and resets the count.
//
// The figure guards the stutter with q.count < j; read literally that
// permits j+1 total returns and makes Stuttering_1 stutter once, which
// contradicts the paper's statement that SSqueue_11 (and hence
// Stuttering_1) is the FIFO queue. We therefore allow a stutter exactly
// when count+1 < j, which yields at most j returns of each item and
// makes StutteringQueue(1) the FIFO queue. It panics if j < 1.
func StutteringQueue(j int) *automaton.Spec {
	if j < 1 {
		panic(fmt.Sprintf("specs: StutteringQueue index j = %d, need j ≥ 1", j))
	}
	asStutQ := func(s value.Value) value.StutQ { return s.(value.StutQ) }
	return automaton.NewSpec(fmt.Sprintf("Stuttering_%d", j), value.EmptyStutQ(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				q := asStutQ(s)
				return []value.Value{value.StutQ{Items: q.Items.Ins(e), Count: q.Count}}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asStutQ(s).Items.IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				q := asStutQ(s)
				first, nonEmpty := q.Items.First()
				if !nonEmpty || first != e {
					return nil
				}
				succ := []value.Value{value.StutQ{Items: q.Items.Rest(), Count: 0}}
				if q.Count+1 < j {
					succ = append(succ, value.StutQ{Items: q.Items, Count: q.Count + 1})
				}
				return succ
			},
		},
	)
}

// SSQueue returns the combined SSqueue_jk automaton of Section 4.2.2:
// any of the first k items may be returned as many as j times. Deq
// returns an item at a position < k, and either keeps it (while another
// return would not exceed j) or removes it. SSQueue(1, 1) is the FIFO
// queue; SSQueue(1, k) accepts the Semiqueue_k language and
// SSQueue(j, 1) the Stuttering_j language. It panics if j < 1 or k < 1.
func SSQueue(j, k int) *automaton.Spec {
	if j < 1 || k < 1 {
		panic(fmt.Sprintf("specs: SSQueue indices j = %d, k = %d, need ≥ 1", j, k))
	}
	asSSQ := func(s value.Value) value.SSQ { return s.(value.SSQ) }
	return automaton.NewSpec(fmt.Sprintf("SSqueue_%d_%d", j, k), value.EmptySSQ(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asSSQ(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asSSQ(s).Items.IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				q := asSSQ(s)
				limit := k
				if n := q.Items.Size(); n < limit {
					limit = n
				}
				var succ []value.Value
				for i := 0; i < limit; i++ {
					if q.Items.Get(i) != e {
						continue
					}
					succ = append(succ, q.Remove(i))
					if q.Counts[i]+1 < j {
						succ = append(succ, q.Stutter(i))
					}
				}
				return succ
			},
		},
	)
}
