// Package specs defines the paper's simple object automata as executable
// Larch interfaces: the bag (Figure 2-2), FIFO queue (Figure 2-4),
// priority queue (Figure 3-2), multi-priority queue (Figure 3-3),
// out-of-order priority queue (Figure 3-4), degenerate priority queue
// (Figure 3-5), semiqueue (Figure 4-1), stuttering queue (Figure 4-3),
// the combined SSqueue_jk (Section 4.2.2), and the bank account family
// (Section 3.4).
package specs

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

func asBag(s value.Value) value.Bag {
	b, ok := s.(value.Bag)
	if !ok {
		panic(fmt.Sprintf("specs: state %T is not a Bag", s))
	}
	return b
}

func asSeq(s value.Value) value.Seq {
	q, ok := s.(value.Seq)
	if !ok {
		panic(fmt.Sprintf("specs: state %T is not a Seq", s))
	}
	return q
}

// enqElem extracts the element of an Enq(e)/Ok() execution, reporting
// ok=false for malformed executions (wrong arity or abnormal
// termination), which the automata reject.
func enqElem(op history.Op) (value.Elem, bool) {
	if len(op.Args) != 1 || len(op.Res) != 0 || op.Term != history.Ok {
		return 0, false
	}
	return value.Elem(op.Args[0]), true
}

// deqElem extracts the result of a Deq()/Ok(e) execution.
func deqElem(op history.Op) (value.Elem, bool) {
	if len(op.Args) != 0 || len(op.Res) != 1 || op.Term != history.Ok {
		return 0, false
	}
	return value.Elem(op.Res[0]), true
}

// BagAutomaton returns the bag automaton of Figures 2-1/2-2:
//
//	Enq(e)/Ok()  ensures b' = ins(b, e)
//	Deq()/Ok(e)  requires ¬isEmp(b)  ensures isIn(b, e) ∧ b' = del(b, e)
func BagAutomaton() *automaton.Spec {
	return automaton.NewSpec("Bag", value.EmptyBag(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asBag(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asBag(s).IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				b := asBag(s)
				if !b.IsIn(e) {
					return nil
				}
				return []value.Value{b.Del(e)}
			},
		},
	)
}

// FIFOQueue returns the FIFO queue automaton of Figures 2-3/2-4:
//
//	Enq(e)/Ok()  ensures q' = ins(q, e)
//	Deq()/Ok(e)  requires ¬isEmp(q)  ensures e = first(q) ∧ q' = rest(q)
func FIFOQueue() *automaton.Spec {
	return automaton.NewSpec("FifoQueue", value.EmptySeq(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asSeq(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asSeq(s).IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				q := asSeq(s)
				first, nonEmpty := q.First()
				if !nonEmpty || first != e {
					return nil
				}
				return []value.Value{q.Rest()}
			},
		},
	)
}

// PriorityQueue returns the priority queue automaton of Figures 3-1/3-2:
//
//	Enq(e)/Ok()  ensures q' = ins(q, e)
//	Deq()/Ok(e)  requires ¬isEmp(q)  ensures e = best(q) ∧ q' = del(q, e)
func PriorityQueue() *automaton.Spec {
	return automaton.NewSpec("PQueue", value.EmptyBag(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asBag(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asBag(s).IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				q := asBag(s)
				best, nonEmpty := q.Best()
				if !nonEmpty || best != e {
					return nil
				}
				return []value.Value{q.Del(e)}
			},
		},
	)
}

// MultiPriorityQueue returns the MPQ automaton of Figure 3-3. Its state
// is a record [present, absent]; Enq inserts into present, and Deq
// either transfers the best present item to absent and returns it, or
// re-returns an absent item whose priority exceeds every present item
// (a request serviced more than once).
func MultiPriorityQueue() *automaton.Spec {
	asMPQ := func(s value.Value) value.MPQ { return s.(value.MPQ) }
	return automaton.NewSpec("MPQueue", value.EmptyMPQ(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				m := asMPQ(s)
				return []value.Value{value.MPQ{Present: m.Present.Ins(e), Absent: m.Absent}}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			// Deq.pre_MPQ is true (noted in the proof of Theorem 4); an
			// unsatisfiable response set rejects instead.
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				m := asMPQ(s)
				var succ []value.Value
				// Disjunct 1: isIn(absent, e) ∧ e > best(present); the
				// queue is unchanged (the request is serviced again).
				if m.Absent.IsIn(e) {
					best, nonEmpty := m.Present.Best()
					if !nonEmpty || e > best {
						succ = append(succ, m)
					}
				}
				// Disjunct 2: e = best(present); transfer to absent.
				if best, nonEmpty := m.Present.Best(); nonEmpty && e == best {
					succ = append(succ, value.MPQ{
						Present: m.Present.Del(e),
						Absent:  m.Absent.Ins(e),
					})
				}
				return succ
			},
		},
	)
}

// OutOfOrderQueue returns the OPQ automaton of Figure 3-4: behaviorally
// a bag — Deq removes some item, not necessarily the best.
func OutOfOrderQueue() *automaton.Spec {
	return BagAutomaton().Rename("OPQueue")
}

// DegeneratePriorityQueue returns the automaton of Figure 3-5: Deq
// returns (but does not necessarily remove) some item in the bag, so
// requests may be serviced multiple times and out of order.
func DegeneratePriorityQueue() *automaton.Spec {
	return automaton.NewSpec("DegenPQueue", value.EmptyBag(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asBag(s).Ins(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Pre: func(s value.Value, op history.Op) bool {
				return !asBag(s).IsEmp()
			},
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				b := asBag(s)
				if !b.IsIn(e) {
					return nil
				}
				// ensures isIn(q, e) only: the item is not removed.
				return []value.Value{b}
			},
		},
	)
}
