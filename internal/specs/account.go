package specs

import (
	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

func asAccount(s value.Value) value.Account { return s.(value.Account) }

// creditAmount extracts the amount of a Credit(n)/Ok() execution.
func creditAmount(op history.Op) (int, bool) {
	if len(op.Args) != 1 || len(op.Res) != 0 || op.Term != history.Ok || op.Args[0] < 0 {
		return 0, false
	}
	return op.Args[0], true
}

// debitAmount extracts the amount of a Debit(n)/term() execution and its
// termination condition.
func debitAmount(op history.Op) (n int, term history.Term, ok bool) {
	if len(op.Args) != 1 || len(op.Res) != 0 || op.Args[0] < 0 {
		return 0, "", false
	}
	if op.Term != history.Ok && op.Term != history.Over {
		return 0, "", false
	}
	return op.Args[0], op.Term, true
}

// BankAccount returns the preferred bank-account automaton of
// Section 3.4: Credit adds to the balance, and Debit subtracts, raising
// the Over exception exactly when the balance would become negative.
func BankAccount() *automaton.Spec {
	return automaton.NewSpec("Account", value.NewAccount(0),
		automaton.OpSpec{
			Name: history.NameCredit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, ok := creditAmount(op)
				if !ok {
					return nil
				}
				return []value.Value{value.NewAccount(asAccount(s).Balance + n)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDebit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, term, ok := debitAmount(op)
				if !ok {
					return nil
				}
				a := asAccount(s)
				switch {
				case term == history.Ok && n <= a.Balance:
					return []value.Value{value.NewAccount(a.Balance - n)}
				case term == history.Over && n > a.Balance:
					return []value.Value{a}
				default:
					return nil
				}
			},
		},
	)
}

// SpuriousAccount returns the degraded account behavior when constraint
// A₁ (initial Debit quorums intersect final Credit quorums) is relaxed
// but A₂ is kept: a debit based on a stale view may bounce spuriously —
// Debit may return Over even when funds suffice — but a successful
// debit never overdraws, so the balance stays non-negative. The paper
// describes this behavior informally; the automaton makes it precise.
func SpuriousAccount() *automaton.Spec {
	return automaton.NewSpec("SpuriousAccount", value.NewAccount(0),
		automaton.OpSpec{
			Name: history.NameCredit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, ok := creditAmount(op)
				if !ok {
					return nil
				}
				return []value.Value{value.NewAccount(asAccount(s).Balance + n)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDebit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, term, ok := debitAmount(op)
				if !ok {
					return nil
				}
				a := asAccount(s)
				switch {
				case term == history.Ok && n <= a.Balance:
					return []value.Value{value.NewAccount(a.Balance - n)}
				case term == history.Over:
					// A view may miss recent credits, so any debit may
					// bounce regardless of the true balance.
					return []value.Value{a}
				default:
					return nil
				}
			},
		},
	)
}

// OverdraftAccount returns the behavior with both A₁ and A₂ relaxed:
// concurrent debits can each miss the other, so a successful debit may
// drive the balance negative (the semantic property the bank refuses to
// give up, which is why its relaxation lattice is restricted to the
// sublattice that always contains A₂).
func OverdraftAccount() *automaton.Spec {
	return automaton.NewSpec("OverdraftAccount", value.NewAccount(0),
		automaton.OpSpec{
			Name: history.NameCredit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, ok := creditAmount(op)
				if !ok {
					return nil
				}
				return []value.Value{value.NewAccount(asAccount(s).Balance + n)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDebit,
			Succ: func(s value.Value, op history.Op) []value.Value {
				n, term, ok := debitAmount(op)
				if !ok {
					return nil
				}
				a := asAccount(s)
				if term == history.Over {
					return []value.Value{a}
				}
				// A debit computed against any stale view may succeed,
				// possibly overdrawing the account.
				return []value.Value{value.NewAccount(a.Balance - n)}
			},
		},
	)
}
