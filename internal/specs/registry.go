package specs

import "relaxlattice/internal/automaton"

// All returns one instance of every specification automaton the paper
// defines (with small indexes for the parameterized families), keyed by
// name. Tooling uses it to enumerate, document, and cross-check the
// catalog.
func All() map[string]automaton.Automaton {
	list := []automaton.Automaton{
		BagAutomaton(),
		FIFOQueue(),
		PriorityQueue(),
		MultiPriorityQueue(),
		OutOfOrderQueue(),
		DegeneratePriorityQueue(),
		Semiqueue(1),
		Semiqueue(2),
		Semiqueue(3),
		StutteringQueue(1),
		StutteringQueue(2),
		StutteringQueue(3),
		SSQueue(1, 1),
		SSQueue(2, 2),
		MultiSemiqueue(2),
		BankAccount(),
		SpuriousAccount(),
		OverdraftAccount(),
	}
	out := make(map[string]automaton.Automaton, len(list))
	for _, a := range list {
		out[a.Name()] = a
	}
	return out
}
