package specs

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
)

func TestMultiSemiqueueAcceptance(t *testing.T) {
	checkAccepts(t, MultiSemiqueue(2), map[string]bool{
		// FIFO behavior is always inside.
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2)": true,
		// Serve within the k-window.
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2) Deq()/Ok(1)": true,
		// Beyond the window: 3 is the third pending element.
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Deq()/Ok(3)": false,
		// Re-serve something already served (a stutter) — the front
		// stays re-servable forever.
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(1)": true,
		// The window slides over *pending* elements: serving 1 brings 3
		// into reach, but a re-serve of 1 does not move it further — 4
		// is still the third pending element.
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Enq(4)/Ok() Deq()/Ok(1) Deq()/Ok(3)":             true,
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Enq(4)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(4)": false,
		// Phantoms are still impossible.
		"Deq()/Ok(1)":             false,
		"Enq(1)/Ok() Deq()/Ok(2)": false,
	})
}

func TestMultiSemiqueue1ReServesOnlyTheServed(t *testing.T) {
	checkAccepts(t, MultiSemiqueue(1), map[string]bool{
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2)":             true,
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)":                         false, // window 1: front only
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(2)": true,  // stutter the served front
	})
}

// MultiSemiqueue(k) contains both Semiqueue(k) (its single-service
// histories) and, at k = 1, MultiFIFOQueue's window-1 re-serves; the
// containments are strict. Bounded language comparison, same bounds as
// the SSqueue lattice-order test.
func TestMultiSemiqueueContainments(t *testing.T) {
	alphabet := history.QueueAlphabet(2)
	const depth = 5
	if r := automaton.Compare(Semiqueue(2), MultiSemiqueue(2), alphabet, depth); !r.SubsetAB() || r.SubsetBA() {
		t.Errorf("want Semiqueue(2) ⊊ MSqueue(2): subsetAB=%v subsetBA=%v", r.SubsetAB(), r.SubsetBA())
	}
	if r := automaton.Compare(FIFOQueue(), MultiSemiqueue(1), alphabet, depth); !r.SubsetAB() || r.SubsetBA() {
		t.Errorf("want FifoQueue ⊊ MSqueue(1): subsetAB=%v subsetBA=%v", r.SubsetAB(), r.SubsetBA())
	}
	if r := automaton.Compare(MultiSemiqueue(1), MultiSemiqueue(2), alphabet, depth); !r.SubsetAB() || r.SubsetBA() {
		t.Errorf("want MSqueue(1) ⊊ MSqueue(2): subsetAB=%v subsetBA=%v", r.SubsetAB(), r.SubsetBA())
	}
}

func TestMultiSemiqueuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MultiSemiqueue(0) did not panic")
		}
	}()
	MultiSemiqueue(0)
}
