package specs

import (
	"testing"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

func h(ops ...history.Op) history.History { return history.History(ops) }

func checkAccepts(t *testing.T, a automaton.Automaton, cases map[string]bool) {
	t.Helper()
	for s, want := range cases {
		hist, err := history.Parse(s)
		if err != nil {
			t.Fatalf("bad test history %q: %v", s, err)
		}
		if got := automaton.Accepts(a, hist); got != want {
			t.Errorf("%s: Accepts(%s) = %v, want %v", a.Name(), s, got, want)
		}
	}
}

func TestBagAutomaton(t *testing.T) {
	checkAccepts(t, BagAutomaton(), map[string]bool{
		"Enq(1)/Ok()":                                                 true,
		"Enq(1)/Ok() Deq()/Ok(1)":                                     true,
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1)":                         true, // any member
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)":                         true,
		"Enq(1)/Ok() Deq()/Ok(2)":                                     false, // not a member
		"Deq()/Ok(1)":                                                 false, // empty
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)":                         false, // removed
		"Enq(1)/Ok() Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)":             true,  // multiplicity
		"Enq(1)/Ok() Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(1)": false,
	})
}

func TestFIFOQueue(t *testing.T) {
	checkAccepts(t, FIFOQueue(), map[string]bool{
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2)": true,
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)":             false, // out of order
		"Deq()/Ok(1)":                                     false,
		"Enq(1)/Ok() Deq()/Ok(1) Enq(2)/Ok() Deq()/Ok(2)": true,
		"Enq(2)/Ok() Enq(1)/Ok() Deq()/Ok(2) Deq()/Ok(1)": true,
	})
}

func TestPriorityQueue(t *testing.T) {
	checkAccepts(t, PriorityQueue(), map[string]bool{
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(3) Deq()/Ok(1)": true,  // best first
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(1)":             false, // passed over 3
		"Enq(3)/Ok() Deq()/Ok(3) Enq(1)/Ok() Deq()/Ok(1)": true,
		"Deq()/Ok(1)": false,
		"Enq(2)/Ok() Enq(2)/Ok() Deq()/Ok(2) Deq()/Ok(2)": true, // ties
		"Enq(2)/Ok() Deq()/Ok(2) Deq()/Ok(2)":             false,
	})
}

func TestMultiPriorityQueue(t *testing.T) {
	checkAccepts(t, MultiPriorityQueue(), map[string]bool{
		// Behaves as a priority queue on legal PQ histories.
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(3) Deq()/Ok(1)": true,
		// Requests may be serviced multiple times...
		"Enq(3)/Ok() Deq()/Ok(3) Deq()/Ok(3)": true,
		// ...but never out of order: an absent item may only be
		// re-returned while it still beats everything present.
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(1)":                         false,
		"Enq(3)/Ok() Deq()/Ok(3) Enq(1)/Ok() Deq()/Ok(3)":             true,  // 3 absent, beats 1
		"Enq(3)/Ok() Deq()/Ok(3) Enq(5)/Ok() Deq()/Ok(3)":             false, // 5 present is better
		"Enq(3)/Ok() Deq()/Ok(3) Enq(5)/Ok() Deq()/Ok(5) Deq()/Ok(3)": true,
		"Deq()/Ok(1)": false, // nothing enqueued, no disjunct satisfiable
	})
}

func TestOutOfOrderQueue(t *testing.T) {
	opq := OutOfOrderQueue()
	if opq.Name() != "OPQueue" {
		t.Errorf("Name = %q", opq.Name())
	}
	checkAccepts(t, opq, map[string]bool{
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(1)": true,  // out of order allowed
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)": false, // never twice
	})
	// OPQ is behaviorally the bag automaton (the paper: "the behavior of
	// an OPQ is just a bag").
	res := automaton.Compare(opq, BagAutomaton(), history.QueueAlphabet(2), 5)
	if !res.Equal {
		t.Errorf("OPQ != Bag: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestDegeneratePriorityQueue(t *testing.T) {
	checkAccepts(t, DegeneratePriorityQueue(), map[string]bool{
		"Enq(1)/Ok() Enq(3)/Ok() Deq()/Ok(1)":             true, // out of order
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)":             true, // multiple times
		"Enq(1)/Ok() Deq()/Ok(2)":                         false,
		"Deq()/Ok(1)":                                     false,
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(1)": true,
	})
}

func TestSemiqueueAcceptance(t *testing.T) {
	checkAccepts(t, Semiqueue(2), map[string]bool{
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Deq()/Ok(2)":             true,  // within first 2
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Deq()/Ok(3)":             false, // beyond k
		"Enq(1)/Ok() Enq(2)/Ok() Enq(3)/Ok() Deq()/Ok(2) Deq()/Ok(3)": true,
		"Deq()/Ok(1)":                         false,
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)": false, // removed
	})
}

func TestSemiqueue1IsFIFO(t *testing.T) {
	res := automaton.Compare(Semiqueue(1), FIFOQueue(), history.QueueAlphabet(2), 6)
	if !res.Equal {
		t.Errorf("Semiqueue_1 != FIFO: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

// "If k is n, the maximum number of items allowed in the queue, the
// object is a bag": with histories bounded to length L, queue length
// never exceeds L, so Semiqueue_L matches the bag up to length L.
func TestSemiqueueLargeKIsBag(t *testing.T) {
	const maxLen = 5
	res := automaton.Compare(Semiqueue(maxLen), BagAutomaton(), history.QueueAlphabet(2), maxLen)
	if !res.Equal {
		t.Errorf("Semiqueue_n != Bag: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestStutteringQueueAcceptance(t *testing.T) {
	checkAccepts(t, StutteringQueue(2), map[string]bool{
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)":                         true,  // twice
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(1)":             false, // thrice
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(1) Deq()/Ok(2)": true,
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)":                         false, // FIFO order kept
		"Deq()/Ok(1)":                                                 false,
	})
}

func TestStuttering1IsFIFO(t *testing.T) {
	res := automaton.Compare(StutteringQueue(1), FIFOQueue(), history.QueueAlphabet(2), 6)
	if !res.Equal {
		t.Errorf("Stuttering_1 != FIFO: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
}

func TestSSQueueCombines(t *testing.T) {
	// SSqueue_11 is the FIFO queue (Section 4.2.2).
	res := automaton.Compare(SSQueue(1, 1), FIFOQueue(), history.QueueAlphabet(2), 6)
	if !res.Equal {
		t.Fatalf("SSqueue_11 != FIFO: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
	// SSqueue_1k accepts exactly the Semiqueue_k language.
	res = automaton.Compare(SSQueue(1, 2), Semiqueue(2), history.QueueAlphabet(2), 6)
	if !res.Equal {
		t.Fatalf("SSqueue_12 != Semiqueue_2: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
	// SSqueue_j1 accepts exactly the Stuttering_j language.
	res = automaton.Compare(SSQueue(2, 1), StutteringQueue(2), history.QueueAlphabet(2), 6)
	if !res.Equal {
		t.Fatalf("SSqueue_21 != Stuttering_2: onlyA=%v onlyB=%v", res.OnlyA, res.OnlyB)
	}
	// The combination is strictly weaker than either projection.
	ss := SSQueue(2, 2)
	both := h(history.Enq(1), history.Enq(2), history.DeqOk(2), history.DeqOk(2), history.DeqOk(1))
	if !automaton.Accepts(ss, both) {
		t.Errorf("SSqueue_22 should accept out-of-order stutter %v", both)
	}
	if automaton.Accepts(Semiqueue(2), both) || automaton.Accepts(StutteringQueue(2), both) {
		t.Errorf("projections should reject %v", both)
	}
}

func TestSSQueueLatticeOrder(t *testing.T) {
	// Larger j, k accept more: SSqueue_11 ⊆ SSqueue_12 ⊆ SSqueue_22.
	alphabet := history.QueueAlphabet(2)
	a := SSQueue(1, 1)
	b := SSQueue(1, 2)
	c := SSQueue(2, 2)
	if res := automaton.Compare(a, b, alphabet, 5); !res.SubsetAB() {
		t.Errorf("SSqueue_11 ⊄ SSqueue_12: %v", res.OnlyA)
	}
	if res := automaton.Compare(b, c, alphabet, 5); !res.SubsetAB() {
		t.Errorf("SSqueue_12 ⊄ SSqueue_22: %v", res.OnlyA)
	}
}

func TestRelaxedQueuePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"semiqueue0":  func() { Semiqueue(0) },
		"stuttering0": func() { StutteringQueue(0) },
		"ssqueue0":    func() { SSQueue(0, 1) },
		"ssqueue0k":   func() { SSQueue(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMalformedOpsRejected(t *testing.T) {
	autos := []automaton.Automaton{
		BagAutomaton(), FIFOQueue(), PriorityQueue(), MultiPriorityQueue(),
		DegeneratePriorityQueue(), Semiqueue(2), StutteringQueue(2), SSQueue(2, 2),
	}
	bad := []history.Op{
		history.MakeOp("Enq", []int{1, 2}, history.Ok, nil),   // wrong arity
		history.MakeOp("Enq", []int{1}, "Boom", nil),          // wrong term
		history.MakeOp("Deq", nil, history.Ok, []int{1, 2}),   // wrong arity
		history.MakeOp("Deq", []int{1}, history.Ok, []int{1}), // arg on Deq
	}
	for _, a := range autos {
		// Prime with an Enq so Deq preconditions hold.
		prefix := h(history.Enq(1))
		for _, op := range bad {
			if automaton.Accepts(a, prefix.Append(op)) {
				t.Errorf("%s accepted malformed op %v", a.Name(), op)
			}
		}
	}
}

func TestMultiFIFOQueueInPackage(t *testing.T) {
	mfq := MultiFIFOQueue()
	checkAccepts(t, mfq, map[string]bool{
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)": true,  // re-serve oldest
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2)": false, // out of arrival order
		"Enq(1)/Ok() Deq()/Ok(2)":             false,
	})
	bad := []history.Op{
		history.MakeOp("Enq", []int{1, 2}, history.Ok, nil),
		history.MakeOp("Deq", nil, "Weird", []int{1}),
	}
	prefix := h(history.Enq(1))
	for _, op := range bad {
		if automaton.Accepts(mfq, prefix.Append(op)) {
			t.Errorf("MFQ accepted malformed %v", op)
		}
	}
}

func TestStateCastPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"bag": func() { BagAutomaton().Step(value.EmptySeq(), history.Enq(1)) },
		"seq": func() { FIFOQueue().Step(value.EmptyBag(), history.Enq(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on foreign state type", name)
				}
			}()
			fn()
		}()
	}
}
