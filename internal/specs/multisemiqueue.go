package specs

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/value"
)

// MultiSemiqueue returns the FIFO queue with both Section 4 relaxations
// composed in their multi-service form: Deq either serves one of the
// first k pending (unserved) requests, marking it served, or re-serves
// a request that was already served — requests may be serviced more
// than once and up to k−1 positions out of arrival order, but are
// never lost.
//
//	Enq(e)/Ok()  ensures q' = append(q, e)
//	Deq()/Ok(e)  ensures (e ∈ prefix(pending(q), k) ∧ q' = serve(q, e))
//	             ∨ (isServed(q, e) ∧ q' = q)
//
// This is the multi-service analog of SSqueue_jk: where SSqueue bounds
// repeats at j by counting, MultiSemiqueue leaves the repeat count
// free and tracks service marks instead, which keeps its transitions
// deterministic on histories of distinct elements — each Deq argument
// is either pending or served, never both. That determinism is what
// makes the online frontier stay at one state per prefix, so relaxcheck
// can certify multi-thousand-operation concurrent runs at this rung;
// the counting SSqueue frontier branches keep-vs-remove on every Deq
// and grows combinatorially. MultiSemiqueue(1) restricted to
// single-service histories is the FIFO queue; it contains Semiqueue(k)
// and MultiFIFOQueue's single-window histories. It panics if k < 1.
func MultiSemiqueue(k int) *automaton.Spec {
	if k < 1 {
		panic(fmt.Sprintf("specs: MultiSemiqueue index k = %d, need k ≥ 1", k))
	}
	asServed := func(s value.Value) value.ServedSeq { return s.(value.ServedSeq) }
	return automaton.NewSpec(fmt.Sprintf("MSqueue_%d", k), value.EmptyServedSeq(),
		automaton.OpSpec{
			Name: history.NameEnq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := enqElem(op)
				if !ok {
					return nil
				}
				return []value.Value{asServed(s).Append(e)}
			},
		},
		automaton.OpSpec{
			Name: history.NameDeq,
			Succ: func(s value.Value, op history.Op) []value.Value {
				e, ok := deqElem(op)
				if !ok {
					return nil
				}
				sv := asServed(s)
				var succ []value.Value
				// Serve one of the first k pending requests.
				seen := 0
				for i := 0; i < sv.Len() && seen < k; i++ {
					if sv.IsServed(i) {
						continue
					}
					seen++
					if sv.Elem(i) == e {
						succ = append(succ, sv.Serve(i))
						break // identical value; one witness suffices
					}
				}
				// Re-serve an already-served request; the value is
				// unchanged.
				for i := 0; i < sv.Len(); i++ {
					if sv.IsServed(i) && sv.Elem(i) == e {
						succ = append(succ, sv)
						break
					}
				}
				return succ
			},
		},
	)
}
