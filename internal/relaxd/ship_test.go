package relaxd

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// Snapshot-shipping battery: a wiped site rebuilds via MsgFetchState
// (published snapshot + WAL suffix from a peer), must certify the
// shipped state before serving, and a kill-restart at every transfer
// step lands on a certified prefix — with the deterministic cluster
// as the model oracle, seeded from the durable logs via LoadSiteLog.

// shipCluster opens a durable 5-site service, runs ops through it, and
// returns the pieces the shipping tests share.
func shipCluster(t *testing.T, snapshotEvery, ops int) (string, []*Replica, *Local, *Client) {
	t.Helper()
	const sites = 5
	base := t.TempDir()
	replicas, err := OpenSites(base, sites, StoreOptions{SyncEvery: 1 << 20})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	t.Cleanup(func() {
		for _, r := range replicas {
			r.Close()
		}
	})
	for _, r := range replicas {
		r.SnapshotEvery = snapshotEvery
	}
	tr := NewLocal(replicas)
	cl := NewClient(PQClientConfig(tr), sites+1)
	for i := 0; i < ops; i++ {
		if _, err := cl.Execute(invAt(i)); err != nil {
			t.Fatalf("op %d (%s): %v", i, invAt(i), err)
		}
	}
	return base, replicas, tr, cl
}

// wipe hard-kills a replica and destroys its store directory — the
// total-loss scenario snapshot shipping exists for.
func wipe(t *testing.T, base string, r *Replica) {
	t.Helper()
	r.Crash()
	if err := os.RemoveAll(filepath.Join(base, fmt.Sprintf("site%d", r.Site()))); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Restart(); err != nil {
		t.Fatalf("restart over wiped dir: %v", err)
	}
	if r.Log().Len() != 0 {
		t.Fatalf("wiped site restarted with %d entries", r.Log().Len())
	}
}

func TestSnapshotShippingRebuildsWipedSite(t *testing.T) {
	const (
		sites  = 5
		victim = 2
		ops    = 24
	)
	base, replicas, tr, cl := shipCluster(t, 10, ops)
	want := replicas[0].Log()
	if want.Len() != ops {
		t.Fatalf("donor holds %d entries, want %d", want.Len(), ops)
	}

	wipe(t, base, replicas[victim])
	info, err := replicas[victim].JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify()})
	if err != nil {
		t.Fatalf("JoinFrom: %v", err)
	}
	if info.SnapshotEntries == 0 || info.WALEntries == 0 {
		t.Fatalf("JoinInfo %+v: want both a shipped snapshot and a WAL suffix", info)
	}
	if info.SnapshotEntries+info.WALEntries != ops {
		t.Fatalf("JoinInfo %+v: shipped %d entries, want %d", info, info.SnapshotEntries+info.WALEntries, ops)
	}
	if got := replicas[victim].Log(); !got.Equal(want) {
		t.Fatalf("joined site log diverges:\n got %s\nwant %s", got, want)
	}
	certifyQ1Q2(t, "shipped state", replicas[victim].Log().History())

	// The transfer must be durable: a crash right after the join
	// recovers the full shipped state from the victim's own store.
	replicas[victim].Crash()
	rinfo, err := replicas[victim].Restart()
	if err != nil {
		t.Fatalf("restart after join: %v", err)
	}
	if got := replicas[victim].Log(); !got.Equal(want) {
		t.Fatalf("shipped state not durable: recovered %d entries (info %+v), want %d",
			got.Len(), rinfo, want.Len())
	}
	if rinfo.SnapshotEntries != info.SnapshotEntries {
		t.Fatalf("recovered snapshot holds %d entries, shipped snapshot held %d",
			rinfo.SnapshotEntries, info.SnapshotEntries)
	}

	// Model-oracle cross-check (cluster.LoadSiteLog): both systems
	// answer the next invocation identically from the recovered logs.
	oracle := cluster.New(cluster.Config{
		Sites:   sites,
		Quorums: quorum.TaxiAssignments(sites)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	})
	for i, r := range replicas {
		oracle.LoadSiteLog(i, r.Log())
	}
	probe := invAt(ops)
	wantOp, err := oracle.Client(0).Execute(probe)
	if err != nil {
		t.Fatalf("oracle probe: %v", err)
	}
	gotOp, err := cl.Execute(probe)
	if err != nil {
		t.Fatalf("probe after join: %v", err)
	}
	if !gotOp.Equal(wantOp) {
		t.Fatalf("joined service answers %s, oracle answers %s", gotOp, wantOp)
	}
}

func TestShipKillRestartAtEveryTransferStep(t *testing.T) {
	const victim = 2
	base, replicas, tr, _ := shipCluster(t, 10, 24)
	donor := replicas[0].Log()

	// Learn the transfer shape once so the per-suffix-entry kill points
	// can be enumerated.
	wipe(t, base, replicas[victim])
	shape, err := replicas[victim].JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify()})
	if err != nil {
		t.Fatalf("shape join: %v", err)
	}
	if shape.WALEntries < 2 {
		t.Fatalf("transfer shape %+v: want a WAL suffix of at least 2 for boundary kills", shape)
	}

	type killPoint struct {
		name  string
		hooks JoinHooks
		// recovered is the exact entry count restart must land on.
		recovered int
	}
	kill := func(fired *bool) error {
		if *fired {
			return nil
		}
		*fired = true
		return errors.New("kill -9 mid-transfer")
	}
	var points []killPoint
	var fired bool
	points = append(points, killPoint{
		name:      "after-fetch",
		hooks:     JoinHooks{AfterFetch: func(int) error { return kill(&fired) }},
		recovered: 0,
	})
	points = append(points, killPoint{
		name:      "after-snapshot-install",
		hooks:     JoinHooks{AfterInstall: func() error { return kill(&fired) }},
		recovered: shape.SnapshotEntries,
	})
	for i := 0; i < shape.WALEntries; i++ {
		i := i
		points = append(points, killPoint{
			name: fmt.Sprintf("before-suffix-%d", i),
			hooks: JoinHooks{BeforeSuffix: func(j int) error {
				if j == i {
					return kill(&fired)
				}
				return nil
			}},
			recovered: shape.SnapshotEntries + i,
		})
	}
	points = append(points, killPoint{
		name:      "before-ready",
		hooks:     JoinHooks{BeforeReady: func() error { return kill(&fired) }},
		recovered: shape.SnapshotEntries + shape.WALEntries,
	})

	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			wipe(t, base, replicas[victim])
			fired = false
			_, err := replicas[victim].JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify(), Hooks: p.hooks})
			if err == nil {
				t.Fatal("join survived its kill point")
			}
			if !fired {
				t.Fatal("kill point never fired")
			}
			// Restart after the mid-transfer kill: recovery must land on
			// a certified prefix of the shipped state — or, before any
			// install, on the empty log.
			info, err := replicas[victim].Restart()
			if err != nil {
				t.Fatalf("restart after %s: %v", p.name, err)
			}
			recovered := replicas[victim].Log()
			if recovered.Len() != p.recovered {
				t.Fatalf("recovered %d entries (info %+v), want %d", recovered.Len(), info, p.recovered)
			}
			if !donor.HasPrefix(recovered) {
				t.Fatalf("recovered log is not a prefix of the donor state:\n%s", recovered)
			}
			certifyQ1Q2(t, "post-kill recovered state", recovered.History())

			// And the interrupted transfer is resumable: a clean second
			// join lands on the full donor state.
			if _, err := replicas[victim].JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify()}); err != nil {
				t.Fatalf("resumed join: %v", err)
			}
			if got := replicas[victim].Log(); !got.Equal(donor) {
				t.Fatalf("resumed join diverges:\n got %s\nwant %s", got, donor)
			}
		})
	}
}

func TestShipRefusesUncertifiedState(t *testing.T) {
	// A donor whose log is poison: a dequeue of an element never
	// enqueued escapes every taxi constraint set.
	donor, _, err := OpenReplica(0, "", StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	donor.log = quorum.LogOf(
		quorum.Entry{TS: ts(1, 0), Op: history.Enq(1)},
		quorum.Entry{TS: ts(2, 0), Op: history.DeqOk(5)},
	)
	victim, _, err := OpenReplica(1, t.TempDir(), StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	tr := NewLocal([]*Replica{donor, victim})

	_, err = victim.JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify()})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("join accepted uncertified state: %v", err)
	}
	if victim.Log().Len() != 0 {
		t.Fatalf("refused join still installed %d entries", victim.Log().Len())
	}
	// The victim is untouched and can still join from an honest donor.
	donor.log = quorum.LogOf(
		quorum.Entry{TS: ts(1, 0), Op: history.Enq(1)},
		quorum.Entry{TS: ts(2, 0), Op: history.DeqOk(1)},
	)
	info, err := victim.JoinFrom(JoinConfig{Transport: tr, Certify: PQCertify()})
	if err != nil {
		t.Fatalf("honest join: %v", err)
	}
	if info.SnapshotEntries+info.WALEntries != 2 || victim.Log().Len() != 2 {
		t.Fatalf("honest join shipped %+v, log %d", info, victim.Log().Len())
	}
}
