package relaxd

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

// serialPQEntries builds n entries forming a legal serial priority-queue
// history (so any prefix certifies at the top of the taxi lattice).
func serialPQEntries(n int) []quorum.Entry {
	entries := make([]quorum.Entry, 0, n)
	var held []int // multiset of enqueued-but-not-dequeued elements
	next := 1
	for i := 0; i < n; i++ {
		var op history.Op
		// Deterministic mix: two enqueues, then a dequeue of the max.
		if i%3 == 2 && len(held) > 0 {
			max, at := held[0], 0
			for j, v := range held {
				if v > max {
					max, at = v, j
				}
			}
			held = append(held[:at], held[at+1:]...)
			op = history.DeqOk(max)
		} else {
			// Elements cycle through 1..9 so repeats occur.
			e := next%9 + 1
			next++
			held = append(held, e)
			op = history.Enq(e)
		}
		entries = append(entries, quorum.Entry{TS: ts(i+1, 6), Op: op})
	}
	return entries
}

func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, log, info, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore fresh: %v", err)
	}
	if log.Len() != 0 || info.SnapshotEntries != 0 || info.WALEntries != 0 || info.RepairedBytes != 0 {
		t.Fatalf("fresh store not empty: log=%d info=%+v", log.Len(), info)
	}
	entries := serialPQEntries(17)
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, log2, info2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore reopen: %v", err)
	}
	defer s2.Close()
	if info2.WALEntries != len(entries) || info2.RepairedBytes != 0 {
		t.Fatalf("reopen info %+v, want %d WAL entries and no repair", info2, len(entries))
	}
	if !log2.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("recovered log differs:\n got %s\nwant %s", log2, quorum.LogOf(entries...))
	}
}

func TestStoreSyncBatching(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SyncEvery: 8})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer s.Close()
	for _, e := range serialPQEntries(20) {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if s.pending >= 8 {
		t.Fatalf("pending %d never flushed with SyncEvery=8", s.pending)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if s.pending != 0 {
		t.Fatalf("pending %d after explicit Sync", s.pending)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(12)
	for _, e := range entries[:8] {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Snapshot(quorum.LogOf(entries[:8]...)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Snapshot resets the WAL; post-snapshot appends land there.
	for _, e := range entries[8:] {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append after snapshot: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, log, info, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if info.SnapshotEntries != 8 || info.WALEntries != 4 {
		t.Fatalf("recovery info %+v, want 8 snapshot + 4 WAL entries", info)
	}
	if !log.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("recovered log differs after snapshot:\n got %s\nwant %s", log, quorum.LogOf(entries...))
	}
}

func TestOpenStoreDiscardsLeftoverSnapshotTmp(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(5)
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash mid-snapshot leaves snap.tmp but never the renamed snap;
	// the WAL still holds everything.
	if err := os.WriteFile(filepath.Join(dir, "snap.tmp"), []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, log, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen with leftover snap.tmp: %v", err)
	}
	defer s2.Close()
	if !log.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("log lost entries after snap.tmp cleanup")
	}
	if _, err := os.Stat(filepath.Join(dir, "snap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("snap.tmp not removed: %v", err)
	}
}

func TestOpenStoreRefusesDamagedSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(6)
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Snapshot(quorum.LogOf(entries...)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := filepath.Join(dir, "snap")
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshots publish atomically, so any damage is real corruption,
	// never a torn write: flip a payload byte.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenStore(dir, StoreOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged snapshot: got %v, want ErrCorrupt", err)
	}
}

func TestOpenStoreRefusesForeignWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenStore(dir, StoreOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign WAL: got %v, want ErrCorrupt", err)
	}
}
