package relaxd

import (
	"errors"
	"testing"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/specs"
)

// Kill-and-restart battery: a replica is hard-killed at every protocol
// step — after the step-1 reads, mid step-2 evaluation, before the WAL
// append, and between the WAL append and the ack — and after recovery
// the relaxation checker must certify the recovered state at the
// claimed rung, with the deterministic cluster (seeded from the
// recovered durable logs via LoadSiteLog) as the model oracle.

// invAt is the deterministic battery workload: two enqueues then a
// dequeue, so the queue never runs dry and every op succeeds.
func invAt(i int) history.Invocation {
	if i%3 == 2 {
		return history.DeqInv()
	}
	return history.EnqInv(i%7 + 1)
}

func certifyQ1Q2(t *testing.T, what string, h history.History) {
	t.Helper()
	if v := relaxcheck.Certify(core.TaxiSimpleLattice(), nil, "Q1Q2", h); v != nil {
		t.Fatalf("%s fails certification at Q1Q2: %+v", what, v)
	}
}

func TestCrashRestartAtEveryProtocolStep(t *testing.T) {
	const (
		sites  = 5
		victim = 2
		warm   = 15 // ops before the crash
		down   = 15 // ops while the victim is dead
		after  = 10 // ops after recovery
	)
	steps := []struct {
		name string
		// arm installs the crash trigger for exactly one operation.
		arm func(c *Client, r *Replica, fired *bool)
		// durable is whether the victim's log after restart includes the
		// entry of the op that was in flight when it died.
		durable bool
	}{
		{
			name: "after-step1-reads",
			arm: func(c *Client, r *Replica, fired *bool) {
				c.Hooks.AfterStep1 = func() {
					if !*fired {
						*fired = true
						r.Crash()
					}
				}
			},
		},
		{
			name: "mid-step2-eval",
			arm: func(c *Client, r *Replica, fired *bool) {
				c.Hooks.AfterStep2 = func() {
					if !*fired {
						*fired = true
						r.Crash()
					}
				}
			},
		},
		{
			name: "before-wal-append",
			arm: func(c *Client, r *Replica, fired *bool) {
				r.Hooks.BeforeAppend = func(site int, e quorum.Entry) error {
					if *fired {
						return nil
					}
					*fired = true
					return errors.New("crash before append")
				}
			},
		},
		{
			name:    "between-wal-append-and-ack",
			durable: true,
			arm: func(c *Client, r *Replica, fired *bool) {
				r.Hooks.BeforeAck = func(site int) error {
					if *fired {
						return nil
					}
					*fired = true
					return errors.New("crash before ack")
				}
			},
		},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			replicas, err := OpenSites(t.TempDir(), sites, StoreOptions{SyncEvery: 1 << 20})
			if err != nil {
				t.Fatalf("OpenSites: %v", err)
			}
			defer func() {
				for _, r := range replicas {
					r.Close()
				}
			}()
			tr := NewLocal(replicas)
			cl := NewClient(PQClientConfig(tr), sites+1)

			var observed history.History
			run := func(from, n int) {
				t.Helper()
				for i := from; i < from+n; i++ {
					op, err := cl.Execute(invAt(i))
					if err != nil {
						t.Fatalf("op %d (%s): %v", i, invAt(i), err)
					}
					observed = append(observed, op)
				}
			}

			run(0, warm)
			beforeCrash := replicas[victim].Log()

			// Arm the crash; the next op kills the victim at this step.
			fired := false
			step.arm(cl, replicas[victim], &fired)
			run(warm, down)
			cl.Hooks = ClientHooks{}
			replicas[victim].Hooks = ReplicaHooks{}
			if !fired {
				t.Fatal("crash trigger never fired")
			}

			// Restart: the headline. Recovery must land exactly where the
			// durable log says, and that state must certify at the rung.
			info, err := replicas[victim].Restart()
			if err != nil {
				t.Fatalf("Restart: %v", err)
			}
			recovered := replicas[victim].Log()
			certifyQ1Q2(t, "recovered site log", recovered.History())

			wantLen := beforeCrash.Len()
			if step.durable {
				// The in-flight entry hit the WAL before the ack was
				// dropped: recovery must resurface it even though the
				// client never knew this site had it.
				wantLen++
				last := recovered.Entry(recovered.Len() - 1).Op
				if !last.Equal(observed[warm]) {
					t.Fatalf("durable-but-unacked entry lost: recovered tail %s, want %s", last, observed[warm])
				}
			}
			if recovered.Len() != wantLen {
				t.Fatalf("recovered %d entries (info %+v), want %d", recovered.Len(), info, wantLen)
			}
			if !quorum.Merge(replicas[0].Log()).HasPrefix(recovered) {
				t.Fatalf("recovered log is not a prefix of a surviving site's log")
			}

			// Model-oracle cross-check: seed a deterministic cluster from
			// the recovered durable logs and have both systems answer the
			// same invocation — the responses must agree.
			oracle := cluster.New(cluster.Config{
				Sites:   sites,
				Quorums: quorum.TaxiAssignments(sites)["Q1Q2"],
				Base:    specs.PriorityQueue(),
				Fold:    quorum.PQFold(),
				Respond: cluster.PQResponder,
			})
			for i, r := range replicas {
				oracle.LoadSiteLog(i, r.Log())
			}
			probe := invAt(warm + down)
			wantOp, err := oracle.Client(0).Execute(probe)
			if err != nil {
				t.Fatalf("oracle probe: %v", err)
			}
			gotOp, err := cl.Execute(probe)
			if err != nil {
				t.Fatalf("probe after restart: %v", err)
			}
			if !gotOp.Equal(wantOp) {
				t.Fatalf("recovered service answers %s, oracle answers %s", gotOp, wantOp)
			}
			observed = append(observed, gotOp)

			// The service keeps running: the restarted site catches up
			// through ordinary step-3 propagation.
			run(warm+down+1, after)
			certifyQ1Q2(t, "client-observed history", observed)
			merged := quorum.Merge(replicas[0].Log(), replicas[1].Log(), replicas[2].Log(),
				replicas[3].Log(), replicas[4].Log())
			certifyQ1Q2(t, "final merged log", merged.History())
			if !replicas[victim].Log().Equal(merged) {
				t.Fatalf("restarted site never caught up:\n got %s\nwant %s", replicas[victim].Log(), merged)
			}
		})
	}
}

// TestCrashWhileDownIsUnavailable pins the transport-level contract: a
// crashed replica answers nothing, and once too many sites are down the
// gate refuses with the cluster's own unavailability error.
func TestCrashWhileDownIsUnavailable(t *testing.T) {
	replicas, err := OpenSites("", 3, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	tr := NewLocal(replicas)
	cl := NewClient(PQClientConfig(tr), 4)
	if _, err := cl.Execute(history.EnqInv(1)); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	replicas[0].Crash()
	replicas[1].Crash()
	_, err = cl.Execute(history.EnqInv(2))
	if !errors.Is(err, cluster.ErrUnavailable) {
		t.Fatalf("2 of 3 sites down: got %v, want ErrUnavailable", err)
	}
	if err := cl.Ping(0); !errors.Is(err, ErrDown) {
		t.Fatalf("ping of crashed site: got %v, want ErrDown", err)
	}
	if err := cl.Ping(2); err != nil {
		t.Fatalf("ping of live site: %v", err)
	}
}
