package relaxd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

func ts(t, s int) quorum.Timestamp { return quorum.Timestamp{Time: t, Site: s} }

func sampleEntries() []quorum.Entry {
	return []quorum.Entry{
		{TS: ts(1, 6), Op: history.Enq(3)},
		{TS: ts(2, 7), Op: history.Enq(9)},
		{TS: ts(3, 6), Op: history.DeqOk(9)},
		{TS: ts(4, 8), Op: history.Credit(100)},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgGetLog},
		{Type: MsgPing},
		{Type: MsgPong},
		{Type: MsgLog, Entries: sampleEntries()},
		{Type: MsgLog},
		{Type: MsgAppend, Entries: sampleEntries()[:1]},
		{Type: MsgAck, N: 42},
		{Type: MsgErr, Err: "site on fire"},
	}
	for _, m := range msgs {
		var b bytes.Buffer
		if err := WriteFrame(&b, m); err != nil {
			t.Fatalf("WriteFrame(%+v): %v", m, err)
		}
		got, err := ReadFrame(&b)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", m, err)
		}
		if got.Type != m.Type || got.N != m.N || got.Err != m.Err || len(got.Entries) != len(m.Entries) {
			t.Fatalf("round trip: sent %+v, got %+v", m, got)
		}
		for i := range m.Entries {
			if got.Entries[i].TS != m.Entries[i].TS || !got.Entries[i].Op.Equal(m.Entries[i].Op) {
				t.Fatalf("entry %d: sent %v, got %v", i, m.Entries[i], got.Entries[i])
			}
		}
	}
}

func TestReadFrameRejectsHostileHeaders(t *testing.T) {
	cases := map[string][]byte{
		"zero length":    {0, 0, 0, 0},
		"over MaxFrame":  {0xff, 0xff, 0xff, 0xff},
		"short body":     {0, 0, 0, 9, MsgPing},
		"empty input":    {},
		"header only":    {0, 0},
		"unknown type":   {0, 0, 0, 1, 0xee},
		"trailing bytes": {0, 0, 0, 3, MsgPing, 1, 2},
	}
	for name, data := range cases {
		if _, err := ReadFrame(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadFrame accepted %x", name, data)
		}
	}
}

// TestReadFrameDoesNotOverAllocate pins the allocation cap: a header
// declaring a body over MaxFrame is rejected before any body
// allocation, and an entry count larger than the payload could hold
// is rejected before the entries slice is sized from it.
func TestReadFrameDoesNotOverAllocate(t *testing.T) {
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, MaxFrame+1)
	// An infinite reader after the header: if the length were trusted,
	// ReadFrame would block allocating and reading MaxFrame+1 bytes.
	r := io.MultiReader(bytes.NewReader(huge), neverEnding{})
	if _, err := ReadFrame(r); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized declared length: got %v, want ErrFrame", err)
	}

	// A MsgLog body declaring 2^40 entries in a 3-byte payload.
	body := []byte{MsgLog, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, err := DecodeMessage(body); !errors.Is(err, ErrFrame) {
		t.Fatalf("hostile entry count: got %v, want ErrFrame", err)
	}
}

type neverEnding struct{}

func (neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0xaa
	}
	return len(p), nil
}

func TestDecodeMessageRejectsBadEntries(t *testing.T) {
	// A structurally valid MsgLog whose op text does not parse.
	b := []byte{MsgLog, 1 /* count */, 1 /* time */, 2 /* site */, 3, 'x', 'y', 'z'}
	if _, err := DecodeMessage(b); !errors.Is(err, ErrFrame) {
		t.Fatalf("unparsable op: got %v, want ErrFrame", err)
	}
	// Op length pointing past the payload.
	b = []byte{MsgLog, 1, 1, 2, 200, 'E'}
	if _, err := DecodeMessage(b); !errors.Is(err, ErrFrame) {
		t.Fatalf("op length past payload: got %v, want ErrFrame", err)
	}
}

func TestAppendMessageRejectsUnencodable(t *testing.T) {
	if _, err := AppendMessage(nil, Message{Type: MsgLog, Entries: []quorum.Entry{
		{TS: ts(-1, 0), Op: history.Enq(1)},
	}}); !errors.Is(err, ErrFrame) {
		t.Fatalf("negative timestamp: got %v, want ErrFrame", err)
	}
	long := history.Op{Name: strings.Repeat("x", maxOpLen), Term: history.Ok}
	if _, err := AppendMessage(nil, Message{Type: MsgLog, Entries: []quorum.Entry{
		{TS: ts(1, 1), Op: long},
	}}); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized op: got %v, want ErrFrame", err)
	}
}
