package relaxd

import (
	"testing"

	"relaxlattice/internal/quorum"
)

// TestTCPKillRestart runs the protocol over real sockets: three sites
// on loopback, a hard kill of one (listener torn down, replica crashed
// with no final flush), a restart on the same address, and a recovery
// the checker certifies. The deterministic battery covers every crash
// point; this covers the actual byte path.
func TestTCPKillRestart(t *testing.T) {
	const sites = 3
	dir := t.TempDir()
	replicas, err := OpenSites(dir, sites, StoreOptions{SyncEvery: 8})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	servers := make([]*SiteServer, sites)
	addrs := make([]string, sites)
	for i, r := range replicas {
		s, err := ListenSite("127.0.0.1:0", r)
		if err != nil {
			t.Fatalf("ListenSite %d: %v", i, err)
		}
		servers[i] = s
		addrs[i] = s.Addr()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	tr := NewTCPTransport(addrs, 0)
	defer tr.Close()
	cl := NewClient(PQClientConfig(tr), sites+1)

	for i := 0; i < 12; i++ {
		if _, err := cl.Execute(invAt(i)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	// Hard kill site 1: the listener goes away and the replica loses
	// all volatile state — only the WAL survives.
	const victim = 1
	servers[victim].lis.Close()
	replicas[victim].Crash()

	// The survivors still form every quorum (2 of 3 ≥ majority).
	for i := 12; i < 24; i++ {
		if _, err := cl.Execute(invAt(i)); err != nil {
			t.Fatalf("op %d with site %d dead: %v", i, victim, err)
		}
	}

	// Restart on the same address, recovering from the WAL.
	info, err := replicas[victim].Restart()
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if info.WALEntries+info.SnapshotEntries == 0 {
		t.Fatal("restart recovered nothing from a WAL that held 12 ops")
	}
	certifyQ1Q2(t, "recovered site log", replicas[victim].Log().History())
	s, err := ListenSite(addrs[victim], replicas[victim])
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addrs[victim], err)
	}
	servers[victim] = s

	for i := 24; i < 36; i++ {
		if _, err := cl.Execute(invAt(i)); err != nil {
			t.Fatalf("op %d after restart: %v", i, err)
		}
	}

	// The restarted site caught up over the wire.
	merged := quorum.Merge(replicas[0].Log(), replicas[1].Log(), replicas[2].Log())
	if !replicas[victim].Log().Equal(merged) {
		t.Fatalf("restarted site behind: %d of %d entries", replicas[victim].Log().Len(), merged.Len())
	}
	certifyQ1Q2(t, "final merged log", merged.History())
}
