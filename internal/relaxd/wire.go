// Package relaxd is the production face of the replicated object: real
// replicas behind a wire protocol, each with a durable append-only site
// log, and a client library that runs the paper's three-step quorum
// protocol (assemble views from a read quorum, choose a response
// consistent with the view, record the new entry at a write quorum)
// against them at a chosen degradation-ladder rung.
//
// The package deliberately mirrors internal/cluster — the deterministic
// in-memory cluster stays the model oracle (the differential tests
// drive both through the same seeded workload and require byte-equal
// logs, histories, and checker verdicts) — while adding the parts a
// simulation cannot have: a length-prefixed binary protocol over
// pluggable transports (a synchronous in-process transport for
// deterministic tests, TCP for production), a per-site WAL with
// per-record CRCs, fsync batching, snapshot + atomic tmp-then-rename
// publish, and crash-restart recovery whose landing point the online
// checker (internal/relaxcheck) certifies. DESIGN.md §15 documents the
// transport/protocol/store boundaries and the recovery invariant.
//
// Like internal/conc, relaxd is a runtime layer: it does real I/O on
// real clocks and is therefore exempt from the model-layer determinism
// lint rules (lock and error discipline still apply in full).
package relaxd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

// Wire limits. A frame body is one type byte plus the payload; the
// decoder rejects any declared length beyond MaxFrame before
// allocating, so a hostile header can never force an over-allocation.
const (
	// MaxFrame bounds a frame body (type byte + payload).
	MaxFrame = 4 << 20
	// maxOpLen bounds one serialized operation execution.
	maxOpLen = 4096
	// minEntryLen is the smallest possible serialized entry (three
	// single-byte uvarints plus a one-byte op) — the denominator for
	// capping entry-count allocations by the bytes actually present.
	minEntryLen = 4
)

// Message types, one per frame kind.
const (
	// MsgGetLog asks a replica for its resident log (protocol step 1).
	MsgGetLog byte = iota + 1
	// MsgLog is the reply to MsgGetLog: the site's log entries.
	MsgLog
	// MsgAppend sends the client's updated view to a replica
	// (protocol step 3); the replica makes the entries it is missing
	// durable before acknowledging.
	MsgAppend
	// MsgAck is the reply to MsgAppend: how many entries were new.
	MsgAck
	// MsgErr is a protocol-level error reply.
	MsgErr
	// MsgPing / MsgPong are the liveness probe pair.
	MsgPing
	MsgPong
	// MsgFetchState asks a replica for its full state for snapshot
	// shipping (a joining or wiped site rebuilding its store).
	MsgFetchState
	// MsgState is the reply to MsgFetchState: the entries the site's
	// published snapshot covers plus its WAL suffix.
	MsgState
)

// ErrFrame is returned for any malformed frame or message payload. It
// is the decoder's single typed refusal: a reader that sees it knows
// the stream is unusable, never silently misparsed.
var ErrFrame = errors.New("relaxd: malformed frame")

// Message is one protocol message in decoded form.
type Message struct {
	Type byte
	// Entries carries the log for MsgLog, the updated view for
	// MsgAppend, and the snapshot-covered part for MsgState.
	Entries []quorum.Entry
	// Wal is the MsgState WAL suffix — the entries past the published
	// snapshot.
	Wal []quorum.Entry
	// N is the MsgAck payload: the number of entries newly appended.
	N int
	// Err is the MsgErr payload.
	Err string
}

// AppendMessage encodes the message body (type byte + payload) onto b.
func AppendMessage(b []byte, m Message) ([]byte, error) {
	b = append(b, m.Type)
	switch m.Type {
	case MsgGetLog, MsgPing, MsgPong, MsgFetchState:
		return b, nil
	case MsgLog, MsgAppend:
		return appendEntryList(b, m.Entries)
	case MsgState:
		b, err := appendEntryList(b, m.Entries)
		if err != nil {
			return nil, err
		}
		return appendEntryList(b, m.Wal)
	case MsgAck:
		if m.N < 0 {
			return nil, fmt.Errorf("%w: negative ack count %d", ErrFrame, m.N)
		}
		return binary.AppendUvarint(b, uint64(m.N)), nil
	case MsgErr:
		b = binary.AppendUvarint(b, uint64(len(m.Err)))
		return append(b, m.Err...), nil
	}
	return nil, fmt.Errorf("%w: unknown message type %d", ErrFrame, m.Type)
}

// DecodeMessage parses one frame body produced by AppendMessage. It
// never panics on hostile input and never allocates beyond what the
// actual payload bytes can justify.
func DecodeMessage(body []byte) (Message, error) {
	if len(body) == 0 {
		return Message{}, fmt.Errorf("%w: empty body", ErrFrame)
	}
	m := Message{Type: body[0]}
	p := body[1:]
	switch m.Type {
	case MsgGetLog, MsgPing, MsgPong, MsgFetchState:
		if len(p) != 0 {
			return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(p))
		}
		return m, nil
	case MsgLog, MsgAppend:
		entries, rest, err := decodeEntryList(p)
		if err != nil {
			return Message{}, err
		}
		if len(rest) != 0 {
			return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(rest))
		}
		m.Entries = entries
		return m, nil
	case MsgState:
		entries, rest, err := decodeEntryList(p)
		if err != nil {
			return Message{}, err
		}
		wal, rest, err := decodeEntryList(rest)
		if err != nil {
			return Message{}, err
		}
		if len(rest) != 0 {
			return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(rest))
		}
		m.Entries = entries
		m.Wal = wal
		return m, nil
	case MsgAck:
		n, rest, err := readUvarint(p)
		if err != nil {
			return Message{}, err
		}
		if len(rest) != 0 || n > uint64(MaxFrame) {
			return Message{}, fmt.Errorf("%w: bad ack payload", ErrFrame)
		}
		m.N = int(n)
		return m, nil
	case MsgErr:
		n, rest, err := readUvarint(p)
		if err != nil {
			return Message{}, err
		}
		if n != uint64(len(rest)) {
			return Message{}, fmt.Errorf("%w: error length %d, %d bytes present", ErrFrame, n, len(rest))
		}
		m.Err = string(rest)
		return m, nil
	}
	return Message{}, fmt.Errorf("%w: unknown message type %d", ErrFrame, m.Type)
}

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian
// body length followed by the body.
func WriteFrame(w io.Writer, m Message) error {
	body, err := AppendMessage(make([]byte, 4, 64), m)
	if err != nil {
		return err
	}
	n := len(body) - 4
	if n > MaxFrame {
		return fmt.Errorf("%w: body %d exceeds MaxFrame", ErrFrame, n)
	}
	binary.BigEndian.PutUint32(body[:4], uint32(n))
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one frame and decodes its body. The declared length
// is validated against MaxFrame before any allocation, so a hostile
// header cannot force an over-allocation past the cap.
func ReadFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return Message{}, fmt.Errorf("%w: declared body length %d", ErrFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("%w: short body: %v", ErrFrame, err)
	}
	return DecodeMessage(body)
}

// appendEntryList encodes a uvarint count followed by the entries.
func appendEntryList(b []byte, entries []quorum.Entry) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(entries)))
	for _, e := range entries {
		var err error
		b, err = appendEntry(b, e)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeEntryList is the inverse of appendEntryList. Each entry needs
// at least minEntryLen bytes, so the declared count is capped by the
// bytes that are actually present — a hostile count can never force an
// over-allocation.
func decodeEntryList(p []byte) ([]quorum.Entry, []byte, error) {
	n, rest, err := readUvarint(p)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)/minEntryLen) {
		return nil, nil, fmt.Errorf("%w: %d entries declared in %d bytes", ErrFrame, n, len(rest))
	}
	entries := make([]quorum.Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e quorum.Entry
		e, rest, err = decodeEntry(rest)
		if err != nil {
			return nil, nil, err
		}
		entries = append(entries, e)
	}
	return entries, rest, nil
}

// appendEntry encodes one log entry: uvarint timestamp time and site,
// then the length-prefixed text form of the operation execution
// (history.Op.String — the same grammar history.ParseOp accepts, so
// the wire reuses the fuzz-hardened parser on the way in).
func appendEntry(b []byte, e quorum.Entry) ([]byte, error) {
	if e.TS.Time < 0 || e.TS.Site < 0 {
		return nil, fmt.Errorf("%w: negative timestamp %v", ErrFrame, e.TS)
	}
	op := e.Op.String()
	if len(op) > maxOpLen {
		return nil, fmt.Errorf("%w: %d-byte operation", ErrFrame, len(op))
	}
	b = binary.AppendUvarint(b, uint64(e.TS.Time))
	b = binary.AppendUvarint(b, uint64(e.TS.Site))
	b = binary.AppendUvarint(b, uint64(len(op)))
	return append(b, op...), nil
}

// decodeEntry is the inverse of appendEntry.
func decodeEntry(b []byte) (quorum.Entry, []byte, error) {
	t, b, err := readUvarint(b)
	if err != nil {
		return quorum.Entry{}, nil, err
	}
	s, b, err := readUvarint(b)
	if err != nil {
		return quorum.Entry{}, nil, err
	}
	const maxInt = int(^uint(0) >> 1)
	if t > uint64(maxInt) || s > uint64(maxInt) {
		return quorum.Entry{}, nil, fmt.Errorf("%w: timestamp overflow", ErrFrame)
	}
	n, b, err := readUvarint(b)
	if err != nil {
		return quorum.Entry{}, nil, err
	}
	if n == 0 || n > maxOpLen || n > uint64(len(b)) {
		return quorum.Entry{}, nil, fmt.Errorf("%w: op length %d with %d bytes left", ErrFrame, n, len(b))
	}
	op, err := history.ParseOp(string(b[:n]))
	if err != nil {
		return quorum.Entry{}, nil, fmt.Errorf("%w: %v", ErrFrame, err)
	}
	return quorum.Entry{TS: quorum.Timestamp{Time: int(t), Site: int(s)}, Op: op}, b[n:], nil
}

// readUvarint decodes one uvarint off the front of b.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrFrame)
	}
	return v, b[n:], nil
}

// Multiplexed framing. A pooled connection opens with the 8-byte
// preamble muxMagic, after which every frame carries an 8-byte
// correlation id between the length prefix and the message body:
//
//	mux frame: [4-byte BE length of (id+body)][8-byte BE id][body]
//
// Replies may arrive in any order; the id pairs them with requests, so
// one connection carries many concurrent in-flight exchanges. The
// server tells the two framings apart by the first bytes of the
// stream: a legacy frame starts with a 4-byte length ≤ MaxFrame whose
// first byte is always 0x00, while muxMagic starts with 'r'.
const (
	muxMagic  = "rlxmux1\n"
	muxHdrLen = 8
)

// WriteMuxFrame writes one multiplexed frame.
func WriteMuxFrame(w io.Writer, id uint64, m Message) error {
	body, err := AppendMessage(make([]byte, 4+muxHdrLen, 64), m)
	if err != nil {
		return err
	}
	n := len(body) - 4
	if n > MaxFrame+muxHdrLen {
		return fmt.Errorf("%w: body %d exceeds MaxFrame", ErrFrame, n)
	}
	binary.BigEndian.PutUint32(body[:4], uint32(n))
	binary.BigEndian.PutUint64(body[4:12], id)
	_, err = w.Write(body)
	return err
}

// ReadMuxFrame reads one multiplexed frame and decodes its body. Like
// ReadFrame, the declared length is validated before any allocation.
func ReadMuxFrame(r io.Reader) (uint64, Message, error) {
	var hdr [4 + muxHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n <= muxHdrLen || n > MaxFrame+muxHdrLen {
		return 0, Message{}, fmt.Errorf("%w: declared mux body length %d", ErrFrame, n)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return 0, Message{}, fmt.Errorf("%w: short mux header: %v", ErrFrame, err)
	}
	id := binary.BigEndian.Uint64(hdr[4:12])
	body := make([]byte, n-muxHdrLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, Message{}, fmt.Errorf("%w: short body: %v", ErrFrame, err)
	}
	m, err := DecodeMessage(body)
	return id, m, err
}
