package relaxd

import (
	"bytes"
	"fmt"
)

// Transport carries one request/reply exchange to a site. The client
// library is transport-agnostic: the in-process transport gives
// deterministic tier-1 tests (synchronous calls, no sockets, no
// sleeps), the TCP transport is the production face. A transport
// error means the site gave no answer and drops out of the quorum for
// that protocol step.
type Transport interface {
	// Sites returns how many sites the transport can reach.
	Sites() int
	// RoundTrip sends req to site and returns its reply.
	RoundTrip(site int, req Message) (Message, error)
}

// ConcurrentTransport marks a transport whose RoundTrip is safe to
// call concurrently (PooledTransport). The client fans protocol steps
// out in parallel over such transports and stays sequential — and
// deterministic — over the rest (Local, TCPTransport).
type ConcurrentTransport interface {
	Transport
	Concurrent() bool
}

// Local is the in-process transport over a fixed set of replicas:
// every call is a synchronous handler dispatch, with the request and
// reply both pushed through the real wire codec so the deterministic
// tests exercise the same byte path TCP does.
type Local struct {
	replicas []*Replica
}

// NewLocal builds the in-process transport.
func NewLocal(replicas []*Replica) *Local {
	return &Local{replicas: replicas}
}

// Sites returns the number of reachable sites.
func (t *Local) Sites() int { return len(t.replicas) }

// Replica exposes site's replica (for crash/restart harnesses).
func (t *Local) Replica(site int) *Replica { return t.replicas[site] }

// RoundTrip encodes req, decodes it on the "server" side, dispatches
// it to the replica, and round-trips the reply the same way.
func (t *Local) RoundTrip(site int, req Message) (Message, error) {
	if site < 0 || site >= len(t.replicas) {
		return Message{}, fmt.Errorf("relaxd: site %d out of range", site)
	}
	decoded, err := reencode(req)
	if err != nil {
		return Message{}, err
	}
	resp, err := t.replicas[site].Handle(decoded)
	if err != nil {
		return Message{}, err
	}
	return reencode(resp)
}

// reencode pushes a message through the wire codec (frame out, frame
// back in), so in-process calls see exactly the bytes TCP would.
func reencode(m Message) (Message, error) {
	var b bytes.Buffer
	if err := WriteFrame(&b, m); err != nil {
		return Message{}, err
	}
	return ReadFrame(&b)
}
