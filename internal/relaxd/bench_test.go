package relaxd

import (
	"sync"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

// The pipelining benchmarks: single-record commit (PR 9's append path
// — one fsync per op) against the group-commit path (many writers
// share one fsync window via AppendBatch + WaitDurable). The reported
// appends/sec metrics land in BENCH_PR10.json, where the pipelined
// number must carry at least 2× the single-commit one.

// benchEntry builds the i-th distinct benchmark entry.
func benchEntry(i int) quorum.Entry {
	return quorum.Entry{TS: ts(i+1, 6), Op: history.Enq(i%9 + 1)}
}

// BenchmarkAppendSingleCommit is the PR 9 discipline: every append is
// its own durable commit — one fsync per record, no batching.
func BenchmarkAppendSingleCommit(b *testing.B) {
	s, _, _, err := OpenStore(b.TempDir(), StoreOptions{SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(benchEntry(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/sec")
}

// BenchmarkAppendPipelined is the group-commit discipline: concurrent
// writers append under the writer mutex and then wait for durability
// outside it, so one elected fsync covers every record that landed in
// the window. Durability per record is identical to single-commit —
// WaitDurable returns only once the record is on disk.
func BenchmarkAppendPipelined(b *testing.B) {
	s, _, _, err := OpenStore(b.TempDir(), StoreOptions{SyncEvery: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	var (
		mu   sync.Mutex
		next int
	)
	// Many concurrent clients per core: the group-commit window only
	// fills when writers outnumber the fsync in flight.
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			i := next
			next++
			target, err := s.AppendBatch([]quorum.Entry{benchEntry(i)})
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
			if err := s.WaitDurable(target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/sec")
}

// BenchmarkRecovery measures a cold OpenStore over a store of 5k
// records spread across segments — the wall-clock a restarted site
// pays before it can serve.
func BenchmarkRecovery(b *testing.B) {
	const records = 5000
	dir := b.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 1024})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if err := s.Append(benchEntry(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, log, info, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if log.Len() != records || info.RepairedBytes != 0 {
			b.Fatalf("recovered %d entries (info %+v), want %d clean", log.Len(), info, records)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "recovery-ms")
}
