package relaxd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"relaxlattice/internal/quorum"
)

// FuzzDecodeFrame hardens the wire decoder: arbitrary bytes must never
// panic, never allocate past the declared caps, and anything that does
// decode must re-encode to a frame that decodes back to the same
// message (the codec is a bijection on its valid range).
func FuzzDecodeFrame(f *testing.F) {
	// One well-formed frame of each message kind, plus hostile shapes.
	for _, m := range []Message{
		{Type: MsgGetLog},
		{Type: MsgPing},
		{Type: MsgPong},
		{Type: MsgAck, N: 3},
		{Type: MsgErr, Err: "no"},
		{Type: MsgLog, Entries: sampleEntries()},
		{Type: MsgAppend, Entries: sampleEntries()[:2]},
	} {
		var b bytes.Buffer
		if err := WriteFrame(&b, m); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, MsgLog, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(m.Entries) > len(data)/minEntryLen {
			t.Fatalf("decoded %d entries from %d bytes — over-allocation past the cap", len(m.Entries), len(data))
		}
		var b bytes.Buffer
		if err := WriteFrame(&b, m); err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := ReadFrame(&b)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if m2.Type != m.Type || m2.N != m.N || m2.Err != m.Err || len(m2.Entries) != len(m.Entries) {
			t.Fatalf("codec not stable: %+v vs %+v", m, m2)
		}
		for i := range m.Entries {
			if m2.Entries[i].TS != m.Entries[i].TS || !m2.Entries[i].Op.Equal(m.Entries[i].Op) {
				t.Fatalf("entry %d not stable: %v vs %v", i, m.Entries[i], m2.Entries[i])
			}
		}
	})
}

// FuzzWALOpen hardens recovery: an arbitrary byte soup as the WAL must
// never panic; it either opens (yielding only CRC-valid records, with a
// second open reporting a clean file) or refuses with ErrCorrupt.
func FuzzWALOpen(f *testing.F) {
	// A clean two-record WAL, then progressively damaged shapes.
	img, _ := fuzzWALSeed(f)
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add([]byte(walMagic))
	f.Add([]byte("rlx"))
	f.Add([]byte("not a wal at all"))
	f.Add(append(append([]byte(nil), img...), 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, log, info, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed without the typed refusal: %v", err)
			}
			return
		}
		if log.Len() != info.WALEntries {
			t.Fatalf("recovered log %d entries, info says %d", log.Len(), info.WALEntries)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// Recovery truncated the torn tail, so a second open is clean
		// and sees the identical log.
		s2, log2, info2, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("second open after repair: %v", err)
		}
		defer s2.Close()
		if info2.RepairedBytes != 0 {
			t.Fatalf("second open repaired %d more bytes", info2.RepairedBytes)
		}
		if !log2.Equal(log) {
			t.Fatalf("recovery not stable:\nfirst  %s\nsecond %s", log, log2)
		}
	})
}

// FuzzSegmentedWALOpen hardens multi-segment recovery: arbitrary byte
// soups as a sealed segment and the active segment must never panic;
// OpenStore either recovers (only CRC-valid records, repair confined to
// the active segment, a second open clean and identical) or refuses
// with ErrCorrupt — sealed segments get no tail repair, so damage there
// is always a refusal, never a silent shortening.
func FuzzSegmentedWALOpen(f *testing.F) {
	// A clean two-segment store (2 records sealed, 1 active), then
	// progressively hostile shapes on either side of the boundary.
	seedDir := f.TempDir()
	s, _, _, err := OpenStore(seedDir, StoreOptions{SegmentRecords: 2})
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range serialPQEntries(3) {
		if err := s.Append(e); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	sealed, err := os.ReadFile(filepath.Join(seedDir, segName(0)))
	if err != nil {
		f.Fatal(err)
	}
	active, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed, active)
	f.Add(sealed, active[:len(active)-3]) // torn active tail: repairable
	f.Add(sealed[:len(sealed)-3], active) // torn sealed tail: refusal
	f.Add([]byte(walMagic), []byte(walMagic))
	f.Add(sealed, []byte("not a wal at all"))
	f.Add([]byte("not a wal at all"), active)
	f.Add(append(append([]byte(nil), sealed...), 0, 0, 0, 0), active)

	f.Fuzz(func(t *testing.T, seg0, seg1 []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), seg0, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), seg1, 0o644); err != nil {
			t.Fatal(err)
		}
		s, log, info, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open failed without the typed refusal: %v", err)
			}
			return
		}
		// The sealed segment is never repaired: every repaired byte must
		// come out of the active segment's image.
		if info.RepairedBytes > len(seg1) {
			t.Fatalf("repaired %d bytes, active segment only holds %d", info.RepairedBytes, len(seg1))
		}
		if log.Len() != info.WALEntries {
			t.Fatalf("recovered log %d entries, info says %d", log.Len(), info.WALEntries)
		}
		if info.Segments != 2 {
			t.Fatalf("opened %d segments, want 2", info.Segments)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		s2, log2, info2, err := OpenStore(dir, StoreOptions{})
		if err != nil {
			t.Fatalf("second open after repair: %v", err)
		}
		defer s2.Close()
		if info2.RepairedBytes != 0 {
			t.Fatalf("second open repaired %d more bytes", info2.RepairedBytes)
		}
		if !log2.Equal(log) {
			t.Fatalf("recovery not stable:\nfirst  %s\nsecond %s", log, log2)
		}
	})
}

// fuzzWALSeed builds a clean two-record WAL image.
func fuzzWALSeed(f *testing.F) ([]byte, []quorum.Entry) {
	f.Helper()
	entries := serialPQEntries(2)
	b := []byte(walMagic)
	for _, e := range entries {
		var err error
		b, err = appendRecord(b, e)
		if err != nil {
			f.Fatal(err)
		}
	}
	return b, entries
}
