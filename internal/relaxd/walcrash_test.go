package relaxd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
)

// The WAL torture battery: a valid WAL image is damaged the way a kill
// -9 (or a lying disk) damages one — truncated at every byte offset,
// zero-filled from every byte offset, and bit-flipped through every CRC
// bit — and OpenStore must either recover a prefix the relaxation
// checker certifies at the claimed rung, or refuse with ErrCorrupt.
// Never a silently wrong log.

// walImage builds a clean WAL image from entries and returns the image
// plus each record's end offset (bounds[i] = end of record i-1;
// bounds[0] = headerLen).
func walImage(t *testing.T, entries []quorum.Entry) (img []byte, bounds []int) {
	t.Helper()
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	img, err = os.ReadFile(filepath.Join(dir, segName(0)))
	if err != nil {
		t.Fatal(err)
	}
	bounds = []int{headerLen}
	for _, e := range entries {
		rec, err := appendRecord(nil, e)
		if err != nil {
			t.Fatalf("appendRecord: %v", err)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+len(rec))
	}
	if bounds[len(bounds)-1] != len(img) {
		t.Fatalf("record bounds end at %d, image is %d bytes", bounds[len(bounds)-1], len(img))
	}
	return img, bounds
}

// openImage writes a damaged WAL image into a fresh directory — under
// the pre-segmentation name "wal", so every torture case also covers
// the legacy-layout migration — and opens it.
func openImage(t *testing.T, img []byte) (*Store, quorum.Log, RecoveryInfo, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal"), img, 0o644); err != nil {
		t.Fatal(err)
	}
	return OpenStore(dir, StoreOptions{})
}

// requireCertifiedPrefix asserts the recovered log is a prefix of the
// original entries AND certifies at the strongest taxi rung — the
// recovery invariant of DESIGN.md §15.
func requireCertifiedPrefix(t *testing.T, recovered quorum.Log, entries []quorum.Entry, wantLen int) {
	t.Helper()
	if recovered.Len() != wantLen {
		t.Fatalf("recovered %d entries, want %d", recovered.Len(), wantLen)
	}
	if !quorum.LogOf(entries...).HasPrefix(recovered) {
		t.Fatalf("recovered log is not a prefix of the original:\n%s", recovered)
	}
	if v := relaxcheck.Certify(core.TaxiSimpleLattice(), nil, "Q1Q2", recovered.History()); v != nil {
		t.Fatalf("recovered prefix fails certification: %+v", v)
	}
}

// completeRecords counts the records of img that survive intact when
// the image is cut (or diverges from the original) at offset o.
func completeRecords(bounds []int, o int) int {
	n := 0
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= o {
			n = i
		}
	}
	return n
}

func TestWALTortureTruncateEveryOffset(t *testing.T) {
	entries := serialPQEntries(10)
	img, bounds := walImage(t, entries)
	for o := 0; o <= len(img); o++ {
		s, log, info, err := openImage(t, img[:o])
		if err != nil {
			t.Fatalf("truncate at %d: open refused a torn tail: %v", o, err)
		}
		want := completeRecords(bounds, o)
		requireCertifiedPrefix(t, log, entries, want)
		if want > 0 && info.RepairedBytes != o-bounds[want] {
			t.Fatalf("truncate at %d: repaired %d bytes, want %d", o, info.RepairedBytes, o-bounds[want])
		}
		// The repaired store must be immediately usable: append past the
		// tear and survive a clean reopen.
		requireUsable(t, s, log, entries)
	}
}

func TestWALTortureZeroFillEveryOffset(t *testing.T) {
	entries := serialPQEntries(10)
	img, bounds := walImage(t, entries)
	for o := headerLen; o < len(img); o++ {
		mut := append([]byte(nil), img...)
		for i := o; i < len(mut); i++ {
			mut[i] = 0
		}
		// The honest oracle: a record survives iff its bytes are
		// unchanged (a zero-fill over already-zero bytes is a no-op).
		want := 0
		for i := 1; i < len(bounds); i++ {
			if !bytes.Equal(mut[bounds[i-1]:bounds[i]], img[bounds[i-1]:bounds[i]]) {
				break
			}
			want = i
		}
		s, log, _, err := openImage(t, mut)
		if err != nil {
			t.Fatalf("zero fill from %d: open refused a torn tail: %v", o, err)
		}
		requireCertifiedPrefix(t, log, entries, want)
		requireUsable(t, s, log, entries)
	}
}

func TestWALTortureBitFlipEveryCRCBit(t *testing.T) {
	entries := serialPQEntries(10)
	img, bounds := walImage(t, entries)
	last := len(bounds) - 2 // index of the last record
	for rec := 0; rec < len(bounds)-1; rec++ {
		crcOff := bounds[rec] + 4
		for bit := 0; bit < 32; bit++ {
			mut := append([]byte(nil), img...)
			mut[crcOff+bit/8] ^= 1 << (bit % 8)
			s, log, info, err := openImage(t, mut)
			if rec == last {
				// A flipped CRC on the final record is indistinguishable
				// from a torn final write: repair by dropping it.
				if err != nil {
					t.Fatalf("flip rec %d bit %d: open refused the final record: %v", rec, bit, err)
				}
				requireCertifiedPrefix(t, log, entries, last)
				if info.RepairedBytes != bounds[rec+1]-bounds[rec] {
					t.Fatalf("flip rec %d bit %d: repaired %d bytes, want the whole record (%d)",
						rec, bit, info.RepairedBytes, bounds[rec+1]-bounds[rec])
				}
				requireUsable(t, s, log, entries)
				continue
			}
			// A bad CRC with live records after it cannot be a torn
			// write: the typed refusal, never a silent repair.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip rec %d bit %d: got %v, want ErrCorrupt", rec, bit, err)
			}
			if s != nil {
				s.Close()
			}
		}
	}
}

// requireUsable appends one fresh entry to a repaired store, reopens,
// and checks nothing was lost — repair must leave a working store.
func requireUsable(t *testing.T, s *Store, recovered quorum.Log, entries []quorum.Entry) {
	t.Helper()
	next := quorum.Entry{TS: ts(len(entries)+100, 6), Op: entries[0].Op}
	if err := s.Append(next); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close after repair: %v", err)
	}
	s2, log, info, err := OpenStore(s.dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	defer s2.Close()
	if info.RepairedBytes != 0 {
		t.Fatalf("reopen after repair still repaired %d bytes", info.RepairedBytes)
	}
	if !log.Equal(recovered.Append(next)) {
		t.Fatalf("post-repair store lost data:\n got %s\nwant %s", log, recovered.Append(next))
	}
}
