package relaxd

import (
	"bytes"
	"math/rand"
	"testing"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/specs"
)

// The three-way differential: the same seeded workload driven through
// the pooled multiplexed transport, through the one-round-trip TCP
// transport, and through the deterministic cluster — over real sockets,
// with a hard kill and a restart in the middle. Per-operation results,
// error strings, observed histories (byte-for-byte), per-site logs, and
// online checker verdicts must be identical across all three: the
// pooled fanout is a pure latency optimization, never a semantic one.

// tcpStack is one networked 5-site service under differential test.
type tcpStack struct {
	replicas []*Replica
	servers  []*SiteServer
	addrs    []string
	clients  []*Client
	audit    *relaxcheck.Checker
	observed history.History
}

func openTCPStack(t *testing.T, sites, nclients int, pooled bool) *tcpStack {
	t.Helper()
	lat := core.TaxiSimpleLattice()
	st := &tcpStack{
		audit: relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)}),
	}
	var err error
	st.replicas, err = OpenSites(t.TempDir(), sites, StoreOptions{SyncEvery: 1 << 20})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	st.servers = make([]*SiteServer, sites)
	st.addrs = make([]string, sites)
	for i, r := range st.replicas {
		s, err := ListenSite("127.0.0.1:0", r)
		if err != nil {
			t.Fatalf("ListenSite %d: %v", i, err)
		}
		st.servers[i] = s
		st.addrs[i] = s.Addr()
	}
	var tr Transport
	if pooled {
		tr = NewPooledTransport(st.addrs, 0)
	} else {
		tr = NewTCPTransport(st.addrs, 0)
	}
	t.Cleanup(func() {
		if c, ok := tr.(interface{ Close() error }); ok {
			c.Close()
		}
		for _, s := range st.servers {
			s.Close()
		}
	})
	st.clients = make([]*Client, nclients)
	for i := range st.clients {
		cfg := PQClientConfig(tr)
		cfg.Audit = st.audit
		st.clients[i] = NewClient(cfg, sites+1+i)
	}
	return st
}

func (st *tcpStack) crash(victim int) {
	st.servers[victim].lis.Close()
	st.replicas[victim].Crash()
}

func (st *tcpStack) heal(t *testing.T, victim int) {
	t.Helper()
	if _, err := st.replicas[victim].Restart(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	s, err := ListenSite(st.addrs[victim], st.replicas[victim])
	if err != nil {
		t.Fatalf("re-listen on %s: %v", st.addrs[victim], err)
	}
	st.servers[victim] = s
}

func TestDifferentialPooledVsSimpleVsOracle(t *testing.T) {
	const (
		sites   = 5
		clients = 4
		ops     = 160
		seed    = 11
		crashAt = 50
		healAt  = 110
		victim  = 2
	)

	lat := core.TaxiSimpleLattice()
	oracleAudit := relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})
	oracle := cluster.New(cluster.Config{
		Sites:   sites,
		Quorums: quorum.TaxiAssignments(sites)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
		Audit:   oracleAudit,
	})
	oracleClients := make([]*cluster.Client, clients)
	for i := range oracleClients {
		oracleClients[i] = oracle.Client(0)
	}

	simple := openTCPStack(t, sites, clients, false)
	pooled := openTCPStack(t, sites, clients, true)

	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		switch i {
		case crashAt:
			oracle.Crash(victim)
			simple.crash(victim)
			pooled.crash(victim)
		case healAt:
			oracle.Restore(victim)
			simple.heal(t, victim)
			pooled.heal(t, victim)
		}
		var inv history.Invocation
		if rng.Float64() < 0.45 {
			inv = history.DeqInv()
		} else {
			inv = history.EnqInv(rng.Intn(9) + 1)
		}
		cl := i % clients
		wantOp, wantErr := oracleClients[cl].Execute(inv)
		for _, st := range []struct {
			name  string
			stack *tcpStack
		}{{"simple", simple}, {"pooled", pooled}} {
			gotOp, gotErr := st.stack.clients[cl].Execute(inv)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("op %d (%s) via %s: oracle err %v, got err %v", i, inv, st.name, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("op %d (%s) via %s: error text diverges:\noracle: %s\n   got: %s",
						i, inv, st.name, wantErr, gotErr)
				}
				continue
			}
			if !gotOp.Equal(wantOp) {
				t.Fatalf("op %d (%s) via %s: oracle answers %s, got %s", i, inv, st.name, wantOp, gotOp)
			}
			st.stack.observed = append(st.stack.observed, gotOp)
		}
	}

	// Observed histories: byte-identical through the export encoding.
	var wantBuf bytes.Buffer
	if err := history.WriteLines(&wantBuf, oracle.Observed()); err != nil {
		t.Fatal(err)
	}
	for _, st := range []struct {
		name  string
		stack *tcpStack
	}{{"simple", simple}, {"pooled", pooled}} {
		var gotBuf bytes.Buffer
		if err := history.WriteLines(&gotBuf, st.stack.observed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
			t.Fatalf("%s observed history diverges from the oracle:\noracle:\n%s\n%s:\n%s",
				st.name, wantBuf.String(), st.name, gotBuf.String())
		}
		// Per-site logs: identical entry-for-entry.
		for i := 0; i < sites; i++ {
			if !st.stack.replicas[i].Log().Equal(oracle.SiteLog(i)) {
				t.Fatalf("%s site %d log diverges from the oracle", st.name, i)
			}
		}
		// Checker verdicts: same level, same step count, clean.
		if st.stack.audit.Level() != oracleAudit.Level() {
			t.Fatalf("%s checker level %q, oracle %q", st.name, st.stack.audit.Level(), oracleAudit.Level())
		}
		if st.stack.audit.Steps() != oracleAudit.Steps() {
			t.Fatalf("%s checker steps %d, oracle %d", st.name, st.stack.audit.Steps(), oracleAudit.Steps())
		}
		if v := st.stack.audit.Violation(); v != nil {
			t.Fatalf("%s checker violation: %+v", st.name, v)
		}
	}
	if v := oracleAudit.Violation(); v != nil {
		t.Fatalf("oracle checker violation: %+v", v)
	}
	certifyQ1Q2(t, "final merged log", oracle.MergedLog().History())
}

// TestPooledConcurrentClients exercises the mux layer the way the
// long-haul soak does: many goroutine clients sharing one pooled
// transport, whole ops serialized by a global mutex (the oracle's
// concurrency grain), so concurrent MsgGetLog/MsgAppend frames from
// the protocol fanout interleave on the shared per-site connections.
func TestPooledConcurrentClients(t *testing.T) {
	const (
		sites     = 5
		nclients  = 6
		perClient = 20
	)
	st := openTCPStack(t, sites, nclients, true)

	opMu := make(chan struct{}, 1)
	errs := make(chan error, nclients)
	for c := 0; c < nclients; c++ {
		go func(c int) {
			cl := st.clients[c]
			for i := 0; i < perClient; i++ {
				opMu <- struct{}{}
				_, err := cl.Execute(invAt(c*perClient + i))
				<-opMu
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < nclients; c++ {
		if err := <-errs; err != nil {
			t.Fatalf("client failed: %v", err)
		}
	}
	if v := st.audit.Violation(); v != nil {
		t.Fatalf("checker violation: %+v", v)
	}
	logs := make([]quorum.Log, sites)
	for i, r := range st.replicas {
		logs[i] = r.Log()
	}
	merged := quorum.Merge(logs...)
	if merged.Len() != nclients*perClient {
		t.Fatalf("merged log holds %d entries, want %d", merged.Len(), nclients*perClient)
	}
	certifyQ1Q2(t, "merged log under concurrent clients", merged.History())
}
