package relaxd

import (
	"bytes"
	"math/rand"
	"testing"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/specs"
)

// The differential test: the same seeded workload driven through the
// networked service (in-process transport, real codec, durable WALs)
// and through the deterministic cluster — the model oracle. Every
// per-operation result, the final merged logs, the observed histories
// (byte-for-byte through WriteLines), and the online checker verdicts
// must be identical. Tier-1: no TCP, no sleeps, one goroutine.
func TestDifferentialNetVsOracle(t *testing.T) {
	const (
		sites   = 5
		clients = 4
		ops     = 200
		seed    = 7
		crashAt = 60  // both systems lose site 2 here...
		healAt  = 140 // ...and get it back here
		victim  = 2
	)

	lat := core.TaxiSimpleLattice()
	oracleAudit := relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})
	netAudit := relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})

	oracle := cluster.New(cluster.Config{
		Sites:   sites,
		Quorums: quorum.TaxiAssignments(sites)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
		Audit:   oracleAudit,
	})
	oracleClients := make([]*cluster.Client, clients)
	for i := range oracleClients {
		oracleClients[i] = oracle.Client(0)
	}

	// Durable replicas so a crash-restart recovers the full log — the
	// semantics cluster.Crash/Restore give the oracle for free.
	replicas, err := OpenSites(t.TempDir(), sites, StoreOptions{SyncEvery: 1 << 20})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	defer func() {
		for _, r := range replicas {
			r.Close()
		}
	}()
	tr := NewLocal(replicas)
	netClients := make([]*Client, clients)
	for i := range netClients {
		cfg := PQClientConfig(tr)
		cfg.Audit = netAudit
		// Clock sites sites+1, sites+2, ... — cluster.Client numbering.
		netClients[i] = NewClient(cfg, sites+1+i)
	}

	rng := rand.New(rand.NewSource(seed))
	var netObserved history.History
	for i := 0; i < ops; i++ {
		switch i {
		case crashAt:
			oracle.Crash(victim)
			replicas[victim].Crash()
		case healAt:
			oracle.Restore(victim)
			if _, err := replicas[victim].Restart(); err != nil {
				t.Fatalf("op %d: restart: %v", i, err)
			}
		}
		var inv history.Invocation
		if rng.Float64() < 0.45 {
			inv = history.DeqInv()
		} else {
			inv = history.EnqInv(rng.Intn(9) + 1)
		}
		cl := i % clients
		wantOp, wantErr := oracleClients[cl].Execute(inv)
		gotOp, gotErr := netClients[cl].Execute(inv)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("op %d (%s): oracle err %v, net err %v", i, inv, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("op %d (%s): error text diverges:\noracle: %s\n   net: %s", i, inv, wantErr, gotErr)
			}
			continue
		}
		if !gotOp.Equal(wantOp) {
			t.Fatalf("op %d (%s): oracle answers %s, net answers %s", i, inv, wantOp, gotOp)
		}
		netObserved = append(netObserved, gotOp)
	}

	// Observed histories: byte-identical through the export encoding.
	var wantBuf, gotBuf bytes.Buffer
	if err := history.WriteLines(&wantBuf, oracle.Observed()); err != nil {
		t.Fatal(err)
	}
	if err := history.WriteLines(&gotBuf, netObserved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Fatalf("observed histories diverge:\noracle:\n%s\nnet:\n%s", wantBuf.String(), gotBuf.String())
	}

	// Site logs and the merged log: identical entry-for-entry.
	logs := make([]quorum.Log, sites)
	for i, r := range replicas {
		logs[i] = r.Log()
		if !logs[i].Equal(oracle.SiteLog(i)) {
			t.Fatalf("site %d log diverges:\noracle: %s\n   net: %s", i, oracle.SiteLog(i), logs[i])
		}
	}
	if !quorum.Merge(logs...).Equal(oracle.MergedLog()) {
		t.Fatalf("merged logs diverge")
	}

	// Checker verdicts: same level, same step count, both clean.
	if oracleAudit.Level() != netAudit.Level() {
		t.Fatalf("checker levels diverge: oracle %q, net %q", oracleAudit.Level(), netAudit.Level())
	}
	if oracleAudit.Steps() != netAudit.Steps() {
		t.Fatalf("checker steps diverge: oracle %d, net %d", oracleAudit.Steps(), netAudit.Steps())
	}
	if v := netAudit.Violation(); v != nil {
		t.Fatalf("net checker violation: %+v", v)
	}
	if v := oracleAudit.Violation(); v != nil {
		t.Fatalf("oracle checker violation: %+v", v)
	}

	// And the merged state itself certifies at the strongest rung.
	certifyQ1Q2(t, "final merged log", oracle.MergedLog().History())
}
