package relaxd

import (
	"errors"
	"fmt"
	"sync"

	"relaxlattice/internal/quorum"
)

// ErrDown is the transport-level failure for a replica that is crashed
// (in-process transports) or unreachable (TCP dial/IO failures wrap
// their own errors but mean the same thing to the protocol: the site
// does not respond and drops out of the quorum).
var ErrDown = errors.New("relaxd: site down")

// ReplicaHooks are test-only crash points. Production replicas leave
// them nil.
type ReplicaHooks struct {
	// BeforeAppend, when set, runs before a received entry is written
	// to the WAL; returning an error aborts the append un-durably (a
	// crash before the write reached the log).
	BeforeAppend func(site int, e quorum.Entry) error
	// BeforeAck, when set, runs after the WAL append and sync but
	// before the acknowledgement is sent; returning an error drops the
	// ack (a crash in the window where the entry is durable but the
	// client does not know it).
	BeforeAck func(site int) error
}

// Replica is one site: a resident log, its durable store, and the
// message handler the transports dispatch into. All state is guarded
// by mu; handlers are safe for concurrent connections. Appends are
// pipelined: the WAL write happens under mu, the fsync wait happens
// after mu is released, so concurrent appends from different
// connections share one group-commit fsync window while every ack
// still waits for its own records to be durable.
type Replica struct {
	mu    sync.Mutex
	site  int
	dir   string       // "" for an ephemeral (in-memory) replica
	opts  StoreOptions // retained for Restart
	store *Store       // guarded by mu; nil when ephemeral or crashed
	log   quorum.Log   // guarded by mu
	down  bool         // guarded by mu
	// appended counts WAL records since the last snapshot; guarded by mu.
	appended int
	// snapLen is how many of the resident log's entries the published
	// snapshot covers (the split point MsgFetchState reports); guarded
	// by mu. Merges can reorder entries, so it is a hint, not an exact
	// prefix — joiners merge both parts anyway.
	snapLen int
	// SnapshotEvery, when positive, publishes a snapshot (compacting
	// the sealed WAL segments) every SnapshotEvery appended entries.
	// Set before serving.
	SnapshotEvery int
	// Hooks are test-only crash points. Set before serving.
	Hooks ReplicaHooks
}

// OpenReplica opens site's durable store under dir and recovers its
// log. An empty dir creates an ephemeral replica (no durability) —
// the deterministic-test configuration.
func OpenReplica(site int, dir string, opts StoreOptions) (*Replica, RecoveryInfo, error) {
	r := &Replica{site: site, dir: dir, opts: opts}
	if dir == "" {
		return r, RecoveryInfo{}, nil
	}
	store, log, info, err := OpenStore(dir, opts)
	if err != nil {
		return nil, info, err
	}
	r.store = store
	r.log = log
	r.snapLen = info.SnapshotEntries
	return r, info, nil
}

// Site returns the replica's site index.
func (r *Replica) Site() int { return r.site }

// Log returns a copy of the resident log.
func (r *Replica) Log() quorum.Log {
	r.mu.Lock()
	defer r.mu.Unlock()
	return quorum.Merge(r.log) // Merge of one shares the immutable log
}

// Crash simulates a hard kill: the replica stops answering, its
// in-memory state is dropped, and its store is closed without any
// final flush beyond what already reached the kernel. Requests
// parked in WaitDurable fail over to an error and are never acked.
func (r *Replica) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashLocked()
}

// Restart recovers a crashed replica from its durable store — the
// crash-restart headline. Ephemeral replicas restart empty (they have
// no durability to recover from).
func (r *Replica) Restart() (RecoveryInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.down {
		return RecoveryInfo{}, fmt.Errorf("relaxd: site %d is not down", r.site)
	}
	if r.dir == "" {
		r.down = false
		r.log = quorum.Log{}
		return RecoveryInfo{}, nil
	}
	store, log, info, err := OpenStore(r.dir, r.opts)
	if err != nil {
		return info, err
	}
	r.store = store
	r.log = log
	r.down = false
	r.appended = 0
	r.snapLen = info.SnapshotEntries
	return info, nil
}

// Close shuts the replica down cleanly (final sync included).
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.down = true
	if r.store == nil {
		return nil
	}
	err := r.store.Close()
	r.store = nil
	return err
}

// Handle processes one protocol message and returns the reply. A
// non-nil error is a transport-level failure — the site gives no
// answer at all (down, or a test hook simulating a crash mid-request).
func (r *Replica) Handle(req Message) (Message, error) {
	if req.Type == MsgAppend {
		return r.applyAppend(req.Entries)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return Message{}, fmt.Errorf("%w: site %d", ErrDown, r.site)
	}
	switch req.Type {
	case MsgPing:
		return Message{Type: MsgPong}, nil
	case MsgGetLog:
		return Message{Type: MsgLog, Entries: r.log.Entries()}, nil
	case MsgFetchState:
		// Snapshot shipping: the resident log split at the published-
		// snapshot boundary, so a joiner can account for what came from
		// the snapshot vs the WAL suffix. Entries() is immutable-shared,
		// so both slices alias one copy.
		k := r.snapLen
		if k > r.log.Len() {
			k = r.log.Len()
		}
		all := r.log.Entries()
		return Message{Type: MsgState, Entries: all[:k], Wal: all[k:]}, nil
	}
	return Message{Type: MsgErr, Err: fmt.Sprintf("unexpected message type %d", req.Type)}, nil
}

// applyAppend merges a received view into the resident log, making
// every entry the site is missing durable before acknowledging. The
// WAL write and log merge happen under mu; the durability wait
// happens after mu is released, so concurrent appends pipeline into
// shared fsync windows. Merging before the fsync is safe: a later
// request that finds its entries already resident waits on a commit
// sequence at least as high as the write that added them, so no ack
// ever precedes its records' durability.
func (r *Replica) applyAppend(view []quorum.Entry) (Message, error) {
	r.mu.Lock()
	if r.down {
		r.mu.Unlock()
		return Message{}, fmt.Errorf("%w: site %d", ErrDown, r.site)
	}
	var missing []quorum.Entry
	for _, e := range view {
		if !r.log.Contains(e.TS) {
			missing = append(missing, e)
		}
	}
	for _, e := range missing {
		if r.Hooks.BeforeAppend != nil {
			if err := r.Hooks.BeforeAppend(r.site, e); err != nil {
				r.crashLocked()
				r.mu.Unlock()
				return Message{}, err
			}
		}
	}
	st := r.store
	var target int64
	synced := false
	if st != nil {
		var err error
		target, err = st.AppendBatch(missing)
		if err != nil {
			r.mu.Unlock()
			return Message{Type: MsgErr, Err: err.Error()}, nil
		}
	}
	r.log = quorum.Merge(r.log, quorum.LogOf(missing...))
	r.appended += len(missing)
	if st != nil && r.SnapshotEvery > 0 && r.appended >= r.SnapshotEvery {
		if err := st.Snapshot(r.log); err != nil {
			r.mu.Unlock()
			return Message{Type: MsgErr, Err: err.Error()}, nil
		}
		r.snapLen = r.log.Len()
		r.appended = 0
		synced = true // Snapshot syncs everything through target
	}
	r.mu.Unlock()

	if st != nil && !synced {
		if err := st.WaitDurable(target); err != nil {
			r.mu.Lock()
			down := r.down
			r.mu.Unlock()
			if down {
				// Crashed while waiting: vanish like a dead site.
				return Message{}, fmt.Errorf("%w: site %d", ErrDown, r.site)
			}
			return Message{Type: MsgErr, Err: err.Error()}, nil
		}
	}
	if r.Hooks.BeforeAck != nil {
		if err := r.Hooks.BeforeAck(r.site); err != nil {
			r.Crash()
			return Message{}, err
		}
	}
	return Message{Type: MsgAck, N: len(missing)}, nil
}

// crashLocked is Crash with mu already held (hook-triggered crashes).
//
//lint:ignore lock-guard caller holds mu (hook paths inside Handle)
func (r *Replica) crashLocked() {
	r.down = true
	r.log = quorum.Log{}
	r.appended = 0
	r.snapLen = 0
	if r.store != nil {
		// A real crash would not even close(2); closing the descriptor
		// loses nothing that the kernel already had, and it unparks
		// every WaitDurable caller with an error.
		r.store.wal.Close()
		r.store = nil
	}
}
