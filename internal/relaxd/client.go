package relaxd

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/value"
)

// ErrNoQuorumAck is returned when step 3 could not collect write-quorum
// acknowledgements: the operation may be durable at some sites but the
// client cannot claim it completed. The entry is NOT reported to the
// audit — a later view may surface its effects, which is exactly the
// ambiguity a lost ack creates in any quorum system.
var ErrNoQuorumAck = errors.New("relaxd: write quorum not acknowledged")

// ClientConfig configures a protocol client. Base, Respond, Quorums,
// and Transport are required; Fold (preferred) or Eval supplies η.
// The types deliberately reuse internal/cluster's: the deterministic
// cluster is the model oracle, and the differential tests hold this
// client to byte-equal behavior.
type ClientConfig struct {
	// Transport reaches the replicas.
	Transport Transport
	// Quorums is the base quorum assignment gating Execute.
	Quorums quorum.Assignment
	// Base is the simple object automaton A.
	Base *automaton.Spec
	// Fold is η in incremental form; it takes precedence over Eval.
	Fold *quorum.FoldEval
	// Eval is η over materialized histories (used when Fold is nil;
	// both nil defaults to δ* of Base).
	Eval quorum.Eval
	// Respond chooses responses from views (step 2).
	Respond cluster.Responder
	// Audit, when set, receives every completed operation — the
	// attachment point for the online checker, same contract as
	// cluster.Config.Audit.
	Audit cluster.Audit
	// Spans, when set, receives one span per executed operation with
	// step-1/2/3 children, rung-attributed like the cluster's.
	Spans *trace.Tracer
	// Metrics, when set, receives attempt/ok/unavailable counters.
	Metrics *obs.Registry
}

// ClientHooks are test-only crash points between protocol steps.
type ClientHooks struct {
	// AfterStep1 runs after the views are assembled, before step 2.
	AfterStep1 func()
	// AfterStep2 runs after the response is chosen, before step 3.
	AfterStep2 func()
}

// Client runs the three-step quorum protocol against live replicas.
// It is one protocol participant: not safe for concurrent use (run
// one Client per goroutine), exactly like a cluster.Client.
type Client struct {
	cfg      ClientConfig
	clock    *quorum.Clock
	observed history.History
	// Degrade enables graceful degradation: when the gate quorum is
	// unavailable the client proceeds with every responding site.
	Degrade bool
	// Hooks are test-only crash points. Set before use.
	Hooks ClientHooks
}

// NewClient builds a client whose Lamport clock is identified by
// clockSite (which must be globally unique across clients and greater
// than every site index, mirroring cluster.Client numbering).
func NewClient(cfg ClientConfig, clockSite int) *Client {
	if cfg.Transport == nil || cfg.Quorums == nil || cfg.Base == nil || cfg.Respond == nil {
		panic("relaxd: Transport, Quorums, Base, and Respond are required")
	}
	if cfg.Quorums.Sites() != cfg.Transport.Sites() {
		panic(fmt.Sprintf("relaxd: assignment over %d sites, transport has %d",
			cfg.Quorums.Sites(), cfg.Transport.Sites()))
	}
	if cfg.Fold == nil && cfg.Eval == nil {
		cfg.Fold = quorum.DeltaFold(cfg.Base)
	}
	return &Client{cfg: cfg, clock: quorum.NewClock(clockSite)}
}

// Observed returns the client's history of completed operations in
// completion order.
func (c *Client) Observed() history.History {
	return c.observed.Append() // copy
}

// Execute runs the protocol for one invocation under the base quorum
// assignment.
func (c *Client) Execute(inv history.Invocation) (history.Op, error) {
	return c.execute(inv, c.cfg.Quorums, "")
}

// ExecuteUnder runs the protocol gated by an alternative quorum
// assignment — one rung of a degradation ladder. Semantics mirror
// (*cluster.Client).ExecuteUnder: the gate decides availability, the
// protocol itself uses every responding site.
func (c *Client) ExecuteUnder(inv history.Invocation, gate quorum.Assignment, label string) (history.Op, error) {
	if gate.Sites() != c.cfg.Transport.Sites() {
		panic(fmt.Sprintf("relaxd: gate assignment over %d sites, transport has %d",
			gate.Sites(), c.cfg.Transport.Sites()))
	}
	return c.execute(inv, gate, label)
}

// Ping probes one site's liveness.
func (c *Client) Ping(site int) error {
	resp, err := c.cfg.Transport.RoundTrip(site, Message{Type: MsgPing})
	if err != nil {
		return err
	}
	if resp.Type != MsgPong {
		return fmt.Errorf("%w: unexpected reply type %d", ErrFrame, resp.Type)
	}
	return nil
}

// execute is the protocol body. Step structure, gating, and error
// vocabulary deliberately mirror cluster.execute.
func (c *Client) execute(inv history.Invocation, gate quorum.Assignment, label string) (history.Op, error) {
	n := c.cfg.Transport.Sites()
	rung := label
	if rung == "" {
		rung = "base"
	}
	var span *trace.SpanRef
	if c.cfg.Spans != nil {
		span = c.cfg.Spans.Begin("relaxd.op",
			obs.KV{K: "op", V: inv.Name},
			obs.KV{K: "rung", V: rung})
	}
	c.cfg.Metrics.Counter("relaxd.execute.attempt." + inv.Name).Add(1)

	// Step 1: assemble views from every site that answers — any
	// superset of an initial quorum is an initial quorum. Over a
	// concurrent transport the fetches fan out in parallel; the reply
	// slice keeps site order either way, so the merged view (and
	// everything downstream) is transport-independent.
	s1 := span.Child("relaxd.step1.view")
	logs := make([]quorum.Log, 0, n)
	responding := make([]int, 0, n)
	alive := make([]bool, n)
	for site, reply := range c.fanout(nil, func(int) Message { return Message{Type: MsgGetLog} }) {
		if reply.skipped || reply.err != nil || reply.msg.Type != MsgLog {
			continue
		}
		logs = append(logs, quorum.LogOf(reply.msg.Entries...))
		responding = append(responding, site)
		alive[site] = true
	}
	s1.End(obs.KV{K: "sites", V: strconv.Itoa(len(responding))})
	quorumOK := gate.HasQuorum(inv.Name, alive)
	if !quorumOK && (label != "" || !c.Degrade) {
		c.cfg.Metrics.Counter("relaxd.execute.unavailable." + inv.Name).Add(1)
		span.End(obs.KV{K: "outcome", V: "unavailable"})
		return history.Op{}, fmt.Errorf("%w: op %s reaches %d site(s)", cluster.ErrUnavailable, inv.Name, len(responding))
	}
	if len(responding) == 0 {
		c.cfg.Metrics.Counter("relaxd.execute.unavailable." + inv.Name).Add(1)
		span.End(obs.KV{K: "outcome", V: "unavailable"})
		return history.Op{}, fmt.Errorf("%w: op %s reaches no sites", cluster.ErrUnavailable, inv.Name)
	}
	view := quorum.Merge(logs...)
	states := c.evalView(view)
	if len(states) == 0 {
		span.End(obs.KV{K: "outcome", V: "uninterpretable"})
		return history.Op{}, fmt.Errorf("relaxd: view not interpretable by η")
	}
	s := states[0]
	if c.Hooks.AfterStep1 != nil {
		c.Hooks.AfterStep1()
	}

	// Step 2: choose a response consistent with the view.
	s2 := span.Child("relaxd.step2.respond")
	op, ok := c.cfg.Respond(s, inv)
	if !ok {
		c.cfg.Metrics.Counter("relaxd.execute.noresponse." + inv.Name).Add(1)
		s2.End(obs.KV{K: "outcome", V: "no-response"})
		span.End(obs.KV{K: "outcome", V: "no-response"})
		return history.Op{}, fmt.Errorf("%w: %s on view %s", cluster.ErrNoResponse, inv, s)
	}
	if !c.cfg.Base.PreHolds(s, op) {
		c.cfg.Metrics.Counter("relaxd.execute.noresponse." + inv.Name).Add(1)
		s2.End(obs.KV{K: "outcome", V: "no-response"})
		span.End(obs.KV{K: "outcome", V: "no-response"})
		return history.Op{}, fmt.Errorf("%w: precondition of %s fails on view %s", cluster.ErrNoResponse, op, s)
	}
	s2.End(obs.KV{K: "outcome", V: "ok"})
	if c.Hooks.AfterStep2 != nil {
		c.Hooks.AfterStep2()
	}

	// Step 3: append the entry and record the updated view at a write
	// quorum of the responding sites.
	s3 := span.Child("relaxd.step3.record")
	if maxTS, any := view.MaxTS(); any {
		c.clock.Witness(maxTS)
	}
	entry := quorum.Entry{TS: c.clock.Tick(), Op: op}
	updated := view.Append(entry).Entries()
	acked := make([]bool, n)
	nacked := 0
	for site, reply := range c.fanout(responding, func(int) Message {
		return Message{Type: MsgAppend, Entries: updated}
	}) {
		if reply.skipped || reply.err != nil || reply.msg.Type != MsgAck {
			continue
		}
		acked[site] = true
		nacked++
	}
	s3.End(obs.KV{K: "sites", V: strconv.Itoa(nacked)})
	if !gate.HasQuorum(inv.Name, acked) && (label != "" || !c.Degrade) {
		c.cfg.Metrics.Counter("relaxd.execute.noack." + inv.Name).Add(1)
		span.End(obs.KV{K: "outcome", V: "no-quorum-ack"})
		return history.Op{}, fmt.Errorf("%w: op %s acked by %d of %d site(s)",
			ErrNoQuorumAck, inv.Name, nacked, len(responding))
	}
	if nacked == 0 {
		c.cfg.Metrics.Counter("relaxd.execute.noack." + inv.Name).Add(1)
		span.End(obs.KV{K: "outcome", V: "no-quorum-ack"})
		return history.Op{}, fmt.Errorf("%w: op %s acked by no sites", ErrNoQuorumAck, inv.Name)
	}
	c.observed = append(c.observed, op)
	c.cfg.Metrics.Counter("relaxd.execute.ok." + inv.Name).Add(1)
	if c.cfg.Audit != nil {
		c.cfg.Audit.ObserveOp(op)
	}
	span.End(obs.KV{K: "outcome", V: "ok"})
	return op, nil
}

// siteReply is one fanned-out round trip's outcome. skipped marks
// sites the fanout was not asked to reach.
type siteReply struct {
	msg     Message
	err     error
	skipped bool
}

// fanout round-trips one request per listed site (nil means every
// site) and returns the replies indexed by site. Over a transport
// that advertises ConcurrentTransport the round trips run in
// parallel — the pooled transport multiplexes them onto one
// connection per site — while plain transports keep the sequential
// site-order loop, which keeps the deterministic in-process path
// byte-identical to the model oracle.
func (c *Client) fanout(sites []int, mk func(site int) Message) []siteReply {
	n := c.cfg.Transport.Sites()
	out := make([]siteReply, n)
	for i := range out {
		out[i].skipped = true
	}
	if sites == nil {
		sites = make([]int, n)
		for i := range sites {
			sites[i] = i
		}
	}
	ct, ok := c.cfg.Transport.(ConcurrentTransport)
	if !ok || !ct.Concurrent() {
		for _, site := range sites {
			m, err := c.cfg.Transport.RoundTrip(site, mk(site))
			out[site] = siteReply{msg: m, err: err}
		}
		return out
	}
	var wg sync.WaitGroup
	for _, site := range sites {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			m, err := c.cfg.Transport.RoundTrip(site, mk(site))
			out[site] = siteReply{msg: m, err: err}
		}(site)
	}
	wg.Wait()
	return out
}

// evalView interprets a view through η.
func (c *Client) evalView(view quorum.Log) []value.Value {
	if c.cfg.Fold != nil {
		return c.cfg.Fold.EvalLog(view)
	}
	return c.cfg.Eval(view.History())
}
