package relaxd

import (
	"errors"
	"fmt"

	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
)

// Snapshot shipping: a recovering or wiped site rebuilds its durable
// store from a peer instead of waiting for client traffic to replay
// history at it. The joiner fetches a peer's state (published snapshot
// plus WAL suffix, MsgFetchState/MsgState), certifies the combined
// history *before* installing anything, installs the snapshot part as
// its own published snapshot, appends the WAL suffix record by record,
// and only then serves. A kill at any transfer step leaves a store
// that recovers to a prefix of the certified state — every prefix of a
// history that certifies also certifies, because violations are
// prefix-monotone — so recovery after a mid-ship kill lands certified
// or refuses with ErrCorrupt, never in between.

// ErrNoPeer is returned when no peer answered a state fetch.
var ErrNoPeer = errors.New("relaxd: no peer shipped state")

// JoinHooks are test-only kill points inside the transfer. Production
// joins leave them nil. Returning an error from any hook crashes the
// replica at that step.
type JoinHooks struct {
	// AfterFetch runs once a peer's state is fetched and certified,
	// before anything is installed.
	AfterFetch func(peer int) error
	// AfterInstall runs after the snapshot part is published locally,
	// before the WAL suffix is appended.
	AfterInstall func() error
	// BeforeSuffix runs before suffix entry i is appended.
	BeforeSuffix func(i int) error
	// BeforeReady runs after the final sync, before JoinFrom returns.
	BeforeReady func() error
}

// JoinConfig configures a snapshot-shipping join.
type JoinConfig struct {
	// Transport reaches the peers (the full site set; the joiner's own
	// slot is skipped).
	Transport Transport
	// Certify, when set, judges the fetched history before install;
	// a non-nil error refuses the ship. PQCertify is the taxi default.
	Certify func(h history.History) error
	// Hooks are test-only kill points. Production joins leave them nil.
	Hooks JoinHooks
}

// JoinInfo reports what a join transferred.
type JoinInfo struct {
	// Peer is the site that shipped its state.
	Peer int
	// SnapshotEntries and WALEntries count the two parts of the
	// transfer as the peer reported them.
	SnapshotEntries int
	// WALEntries is the length of the shipped WAL suffix.
	WALEntries int
}

// JoinFrom rebuilds this replica's state from the first peer that
// answers a state fetch. The replica must be up (freshly opened or
// restarted — typically over a wiped directory) and not yet serving.
// The shipped history is certified before install; a certification
// failure refuses the ship and leaves the local store untouched.
func (r *Replica) JoinFrom(cfg JoinConfig) (JoinInfo, error) {
	if cfg.Transport == nil {
		return JoinInfo{}, errors.New("relaxd: JoinFrom requires a transport")
	}
	n := cfg.Transport.Sites()
	peer, resp, err := fetchState(cfg.Transport, r.site, n)
	if err != nil {
		return JoinInfo{}, err
	}
	snapLog := quorum.LogOf(resp.Entries...)
	combined := quorum.Merge(snapLog, quorum.LogOf(resp.Wal...))
	if cfg.Certify != nil {
		if err := cfg.Certify(combined.History()); err != nil {
			return JoinInfo{}, fmt.Errorf("relaxd: state shipped by site %d does not certify: %w", peer, err)
		}
	}
	info := JoinInfo{Peer: peer, SnapshotEntries: snapLog.Len(), WALEntries: len(resp.Wal)}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.down {
		return info, fmt.Errorf("%w: site %d", ErrDown, r.site)
	}
	if cfg.Hooks.AfterFetch != nil {
		if err := cfg.Hooks.AfterFetch(peer); err != nil {
			r.crashLocked()
			return info, err
		}
	}
	if r.store != nil && snapLog.Len() > 0 {
		// Install the snapshot part as our own published snapshot (this
		// also compacts whatever segments predate the ship).
		if err := r.store.Snapshot(snapLog); err != nil {
			return info, err
		}
	}
	r.log = quorum.Merge(r.log, snapLog)
	r.snapLen = snapLog.Len()
	if cfg.Hooks.AfterInstall != nil {
		if err := cfg.Hooks.AfterInstall(); err != nil {
			r.crashLocked()
			return info, err
		}
	}
	// Append the WAL suffix record by record, so a kill at any step
	// leaves a durable prefix of the certified state.
	for i, e := range resp.Wal {
		if cfg.Hooks.BeforeSuffix != nil {
			if err := cfg.Hooks.BeforeSuffix(i); err != nil {
				r.crashLocked()
				return info, err
			}
		}
		if r.log.Contains(e.TS) {
			continue
		}
		if r.store != nil {
			if err := r.store.Append(e); err != nil {
				return info, err
			}
		}
		r.log = quorum.Merge(r.log, quorum.LogOf(e))
	}
	if r.store != nil {
		if err := r.store.Sync(); err != nil {
			return info, err
		}
	}
	r.appended = 0
	if cfg.Hooks.BeforeReady != nil {
		if err := cfg.Hooks.BeforeReady(); err != nil {
			r.crashLocked()
			return info, err
		}
	}
	return info, nil
}

// fetchState asks each peer in site order for its state and returns
// the first well-formed answer.
func fetchState(t Transport, self, n int) (int, Message, error) {
	var lastErr error
	for site := 0; site < n; site++ {
		if site == self {
			continue
		}
		resp, err := t.RoundTrip(site, Message{Type: MsgFetchState})
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Type != MsgState {
			lastErr = fmt.Errorf("relaxd: site %d answered type %d to a state fetch", site, resp.Type)
			continue
		}
		return site, resp, nil
	}
	if lastErr != nil {
		return 0, Message{}, fmt.Errorf("%w: %v", ErrNoPeer, lastErr)
	}
	return 0, Message{}, ErrNoPeer
}
