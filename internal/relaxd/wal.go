package relaxd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"relaxlattice/internal/quorum"
)

// Store file layout (DESIGN.md §15 has the byte diagram):
//
//	wal:  [8-byte magic "rlxwal1\n"] record*
//	snap: [8-byte magic "rlxsnp1\n"] [4-byte BE count] record*
//
//	record: [4-byte BE payload len][4-byte BE CRC32-IEEE(payload)][payload]
//	payload: one log entry (appendEntry encoding), 1..maxRecord bytes
//
// The WAL is append-only; the snapshot is written to snap.tmp, fsynced,
// and atomically renamed over snap (then the directory is fsynced), so
// a reader never observes a half-published snapshot. Every payload
// carries its own CRC; a zero-length record is invalid by construction,
// which keeps a zero-filled tail (CRC32("")==0) from decoding as a
// valid empty record.
const (
	walMagic  = "rlxwal1\n"
	snapMagic = "rlxsnp1\n"
	headerLen = 8
	recHdrLen = 8
	maxRecord = MaxFrame
)

// ErrCorrupt is the store's typed refusal: the on-disk state is
// damaged in a way that truncated-tail repair cannot explain (a bad
// record with intact data after it, a mangled snapshot, a foreign
// header). Open never silently drops interior data — it either
// recovers a prefix that a torn final write explains, or returns an
// error wrapping ErrCorrupt.
var ErrCorrupt = errors.New("relaxd: corrupt store")

// StoreOptions tunes durability.
type StoreOptions struct {
	// SyncEvery batches fsyncs: the WAL is fsynced after every
	// SyncEvery appended records (and on Sync/Snapshot/Close). 0 or 1
	// syncs every append — the durable default.
	SyncEvery int
}

// RecoveryInfo reports what OpenStore found.
type RecoveryInfo struct {
	// SnapshotEntries is the number of entries loaded from the
	// published snapshot (0 when none exists).
	SnapshotEntries int
	// WALEntries is the number of entries replayed from the WAL.
	WALEntries int
	// RepairedBytes is how many trailing bytes of the WAL were
	// discarded as a torn final write (0 on a clean open).
	RepairedBytes int
}

// Store is one site's durable log: a write-ahead log of entries plus a
// periodically published snapshot. It is not safe for concurrent use;
// the owning Replica serializes access behind its own mutex.
type Store struct {
	dir     string
	wal     *os.File
	walSize int64
	pending int
	opts    StoreOptions
	buf     []byte // scratch for record encoding
}

// OpenStore opens (creating if absent) the site store in dir and
// recovers its log: the published snapshot, if any, merged with every
// WAL record that passes validation. A torn final write — truncated
// record, zero-filled tail, or a corrupt last record — is repaired by
// truncating the WAL back to its last valid record. Anything else
// (a bad record with valid data after it, a damaged snapshot) refuses
// with an error wrapping ErrCorrupt.
func OpenStore(dir string, opts StoreOptions) (*Store, quorum.Log, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, quorum.Log{}, info, err
	}
	// A leftover snap.tmp is a snapshot that never published; the
	// WAL+old snapshot still hold everything it held.
	if err := os.Remove(filepath.Join(dir, "snap.tmp")); err != nil && !os.IsNotExist(err) {
		return nil, quorum.Log{}, info, err
	}

	snapLog, snapN, err := readSnapshot(filepath.Join(dir, "snap"))
	if err != nil {
		return nil, quorum.Log{}, info, err
	}
	info.SnapshotEntries = snapN

	walPath := filepath.Join(dir, "wal")
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, quorum.Log{}, info, err
	}
	entries, goodLen, err := recoverWAL(data)
	if err != nil {
		return nil, quorum.Log{}, info, fmt.Errorf("%s: %w", walPath, err)
	}
	info.WALEntries = len(entries)
	info.RepairedBytes = len(data) - goodLen

	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, quorum.Log{}, info, err
	}
	s := &Store{dir: dir, wal: f, opts: opts}
	if goodLen < headerLen {
		// Fresh or torn-at-creation WAL: (re)write the header.
		if err := s.resetWAL(); err != nil {
			f.Close()
			return nil, quorum.Log{}, info, err
		}
	} else if goodLen < len(data) {
		// Torn final write: discard the tail.
		if err := f.Truncate(int64(goodLen)); err != nil {
			f.Close()
			return nil, quorum.Log{}, info, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, quorum.Log{}, info, err
		}
		s.walSize = int64(goodLen)
	} else {
		s.walSize = int64(goodLen)
	}
	if _, err := f.Seek(s.walSize, 0); err != nil {
		f.Close()
		return nil, quorum.Log{}, info, err
	}
	return s, quorum.Merge(snapLog, quorum.LogOf(entries...)), info, nil
}

// recoverWAL validates a raw WAL image (header + records). It returns
// the decoded entries of every valid record and the byte length of the
// valid prefix. goodLen < len(data) means a torn tail was identified
// and should be truncated; goodLen < headerLen means the header itself
// must be rewritten. An inconsistency that a torn final write cannot
// explain returns an error wrapping ErrCorrupt.
func recoverWAL(data []byte) (entries []quorum.Entry, goodLen int, err error) {
	if len(data) < headerLen {
		// Nothing, or a torn header write: repairable iff the bytes are
		// a prefix of the magic (the only thing ever written first).
		if bytes.Equal(data, []byte(walMagic)[:len(data)]) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: %d-byte file is not a WAL prefix", ErrCorrupt, len(data))
	}
	if string(data[:headerLen]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, data[:headerLen])
	}
	o := headerLen
	for o < len(data) {
		e, n, ok, err := readRecord(data[o:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w at offset %d", err, o)
		}
		if !ok {
			// Structurally broken or CRC-failed record. A torn final
			// write explains it only if nothing meaningful follows:
			// either the breakage runs to EOF as the last record, or
			// the rest of the file is zero fill (preallocated blocks).
			if torn(data[o:], n) {
				return entries, o, nil
			}
			return nil, 0, fmt.Errorf("%w: bad record at offset %d with %d live bytes after it",
				ErrCorrupt, o, len(data)-o)
		}
		entries = append(entries, e)
		o += n
	}
	return entries, o, nil
}

// readRecord parses one record off the front of b. ok=false with
// n=the structural length means the record is complete but fails
// validation (CRC or payload decode); ok=false with n=0 means the
// record is structurally incomplete or its header is implausible.
// A non-nil error is returned only for payload bytes whose CRC passes
// but which do not decode — that is never a torn write.
func readRecord(b []byte) (e quorum.Entry, n int, ok bool, err error) {
	if len(b) < recHdrLen {
		return quorum.Entry{}, 0, false, nil
	}
	l := binary.BigEndian.Uint32(b[:4])
	if l == 0 || l > maxRecord {
		return quorum.Entry{}, 0, false, nil
	}
	if recHdrLen+int(l) > len(b) {
		return quorum.Entry{}, 0, false, nil
	}
	n = recHdrLen + int(l)
	payload := b[recHdrLen:n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[4:8]) {
		return quorum.Entry{}, n, false, nil
	}
	e, rest, derr := decodeEntry(payload)
	if derr != nil || len(rest) != 0 {
		return quorum.Entry{}, 0, false,
			fmt.Errorf("%w: record passes CRC but does not decode", ErrCorrupt)
	}
	return e, n, true, nil
}

// torn reports whether a validation failure at the start of b is
// explicable as a torn final write. n is readRecord's structural
// length (0 when the record was structurally incomplete or its header
// implausible). The cases:
//
//   - a CRC-failed but structurally complete record (n > 0) is torn
//     iff it runs to EOF or everything after it is zero fill;
//   - a tail shorter than one record header is always torn;
//   - an implausible length field (0 or > maxRecord) is torn only when
//     the whole remainder is zero fill — records are written in one
//     contiguous write, so a torn write leaves a *prefix*, and a
//     prefix of ≥ 4 bytes carries the true length; live garbage there
//     is corruption;
//   - a plausible length extending past EOF is a torn payload.
func torn(b []byte, n int) bool {
	if n > 0 {
		return n >= len(b) || zeroFilled(b[n:])
	}
	if len(b) < recHdrLen {
		return true
	}
	l := binary.BigEndian.Uint32(b[:4])
	if l == 0 || l > maxRecord {
		return zeroFilled(b)
	}
	return true
}

// zeroFilled reports whether every byte of b is zero.
func zeroFilled(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// appendRecord encodes one record (header + entry payload) onto b.
func appendRecord(b []byte, e quorum.Entry) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b, err := appendEntry(b, e)
	if err != nil {
		return nil, err
	}
	payload := b[start+recHdrLen:]
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("%w: %d-byte record", ErrFrame, len(payload))
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b, nil
}

// Append makes one entry durable: the record is written to the WAL and
// fsynced according to StoreOptions.SyncEvery.
func (s *Store) Append(e quorum.Entry) error {
	b, err := appendRecord(s.buf[:0], e)
	if err != nil {
		return err
	}
	s.buf = b[:0]
	if _, err := s.wal.Write(b); err != nil {
		return err
	}
	s.walSize += int64(len(b))
	s.pending++
	if s.opts.SyncEvery <= 1 || s.pending >= s.opts.SyncEvery {
		return s.Sync()
	}
	return nil
}

// Sync flushes any batched appends to stable storage.
func (s *Store) Sync() error {
	if s.pending == 0 {
		return nil
	}
	s.pending = 0
	return s.wal.Sync()
}

// Snapshot publishes the given log as the site's snapshot — written to
// snap.tmp, fsynced, renamed over snap, directory fsynced — and then
// resets the WAL, whose entries the snapshot now covers. The publish
// is atomic: a crash anywhere leaves either the old snapshot with the
// full WAL or the new snapshot with a reset (or stale-but-merged,
// since Merge deduplicates by timestamp) WAL.
func (s *Store) Snapshot(l quorum.Log) error {
	if err := s.Sync(); err != nil {
		return err
	}
	b := make([]byte, 0, headerLen+4+l.Len()*32)
	b = append(b, snapMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(l.Len()))
	for i := 0; i < l.Len(); i++ {
		var err error
		b, err = appendRecord(b, l.Entry(i))
		if err != nil {
			return err
		}
	}
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snap")); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	return s.resetWAL()
}

// resetWAL truncates the WAL to a fresh header.
func (s *Store) resetWAL() error {
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	if _, err := s.wal.WriteString(walMagic); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.walSize = headerLen
	s.pending = 0
	return nil
}

// Close flushes and closes the WAL.
func (s *Store) Close() error {
	if err := s.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}

// readSnapshot loads and validates the published snapshot. A missing
// snapshot is an empty log; anything structurally wrong is ErrCorrupt
// (snapshots publish atomically, so damage is never a torn write).
func readSnapshot(path string) (quorum.Log, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return quorum.Log{}, 0, nil
	}
	if err != nil {
		return quorum.Log{}, 0, err
	}
	if len(data) < headerLen+4 || string(data[:headerLen]) != snapMagic {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: bad snapshot header", path, ErrCorrupt)
	}
	count := binary.BigEndian.Uint32(data[headerLen : headerLen+4])
	b := data[headerLen+4:]
	if uint64(count) > uint64(len(b)/recHdrLen+1) {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: %d entries declared in %d bytes", path, ErrCorrupt, count, len(b))
	}
	entries := make([]quorum.Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e, n, ok, err := readRecord(b)
		if err != nil || !ok {
			return quorum.Log{}, 0, fmt.Errorf("%s: %w: bad snapshot record %d", path, ErrCorrupt, i)
		}
		entries = append(entries, e)
		b = b[n:]
	}
	if len(b) != 0 {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: %d trailing snapshot bytes", path, ErrCorrupt, len(b))
	}
	return quorum.LogOf(entries...), len(entries), nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
