package relaxd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"relaxlattice/internal/quorum"
)

// Store file layout (DESIGN.md §15 has the byte diagram):
//
//	wal-NNNNNN: [8-byte magic "rlxwal1\n"] record*
//	snap:       [8-byte magic "rlxsnp1\n"] [4-byte BE count] record*
//
//	record: [4-byte BE payload len][4-byte BE CRC32-IEEE(payload)][payload]
//	payload: one log entry (appendEntry encoding), 1..maxRecord bytes
//
// The WAL is a sequence of append-only segments named wal-000000,
// wal-000001, … with contiguous indexes. Exactly one — the highest —
// is active; rotation fsyncs the active segment, creates the next
// (magic written and fsynced, directory fsynced), and seals the old
// one, so every non-final segment is fully durable by construction.
// Compaction (Snapshot) publishes the snapshot, rotates, and deletes
// the sealed segments oldest-first, so a crash at any point leaves a
// contiguous segment suffix whose merge with the published snapshot is
// the same log.
//
// The snapshot is written to snap.tmp, fsynced, and atomically renamed
// over snap (then the directory is fsynced), so a reader never observes
// a half-published snapshot. Every payload carries its own CRC; a
// zero-length record is invalid by construction, which keeps a
// zero-filled tail (CRC32("")==0) from decoding as a valid empty
// record.
//
// Stores created before segmentation used a single file named "wal";
// OpenStore migrates it by renaming it to wal-000000.
const (
	walMagic  = "rlxwal1\n"
	snapMagic = "rlxsnp1\n"
	headerLen = 8
	recHdrLen = 8
	maxRecord = MaxFrame

	segPrefix = "wal-"
	segDigits = 6
)

// ErrCorrupt is the store's typed refusal: the on-disk state is
// damaged in a way that truncated-tail repair cannot explain (a bad
// record with intact data after it, damage inside a sealed segment, a
// mangled snapshot, a foreign header). Open never silently drops
// interior data — it either recovers a prefix that a torn final write
// explains, or returns an error wrapping ErrCorrupt.
var ErrCorrupt = errors.New("relaxd: corrupt store")

// StoreOptions tunes durability and segment geometry.
type StoreOptions struct {
	// SyncEvery batches fsyncs: the WAL is fsynced after every
	// SyncEvery appended records (and on Sync/Snapshot/Close). 0 or 1
	// syncs every append — the durable default.
	SyncEvery int
	// SegmentRecords, when positive, rotates the active WAL segment
	// after it holds that many records. 0 keeps a single unbounded
	// segment (compaction still rotates on every snapshot).
	SegmentRecords int
}

// RecoveryInfo reports what OpenStore found.
type RecoveryInfo struct {
	// SnapshotEntries is the number of entries loaded from the
	// published snapshot (0 when none exists).
	SnapshotEntries int
	// WALEntries is the number of entries replayed from the WAL
	// segments.
	WALEntries int
	// RepairedBytes is how many trailing bytes of the active segment
	// were discarded as a torn final write (0 on a clean open).
	RepairedBytes int
	// Segments is how many WAL segments the store found.
	Segments int
	// CompactedThrough is the index of the oldest segment present —
	// every lower-indexed segment has been compacted into the
	// published snapshot.
	CompactedThrough int
}

// Store is one site's durable log: segmented write-ahead log plus a
// periodically published snapshot. Writes (Append, AppendBatch,
// Snapshot, Close) are single-writer — the owning Replica serializes
// them behind its own mutex — but WaitDurable and Sync are safe to
// call concurrently with each other and with the writer: concurrent
// waiters share fsyncs (group commit), which is what lets pipelined
// appends from many connections ride one fsync window.
type Store struct {
	dir  string
	opts StoreOptions
	buf  []byte // scratch for record encoding (writer-only)

	// Writer state, guarded by the owner's serialization (the Replica
	// mutex), not by a Store lock.
	wal        *os.File // active segment
	walSize    int64
	segIndex   int // index of the active segment
	segRecords int // records in the active segment
	firstSeg   int // oldest segment on disk (compaction floor)
	pending    int // appends since the last Sync (SyncEvery batching)

	// Commit state, shared between the writer and concurrent
	// WaitDurable callers. Guarded by cmu.
	cmu      sync.Mutex
	ccond    *sync.Cond
	syncFile *os.File // active segment, as the fsyncing side sees it
	seq      int64    // records written (commit sequence numbers 1..seq)
	durable  int64    // highest commit sequence known fsynced
	syncing  bool     // an fsync is in flight
	syncErr  error    // sticky: first fsync failure poisons the store
}

// segName formats a segment file name.
func segName(i int) string {
	return fmt.Sprintf("%s%0*d", segPrefix, segDigits, i)
}

// parseSegName extracts a segment index, or ok=false for other files.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, false
	}
	d := name[len(segPrefix):]
	if len(d) < segDigits {
		return 0, false
	}
	n, err := strconv.Atoi(d)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the sorted segment indexes present in dir.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, de := range ents {
		if i, ok := parseSegName(de.Name()); ok {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// OpenStore opens (creating if absent) the site store in dir and
// recovers its log: the published snapshot, if any, merged with every
// record of every WAL segment that passes validation. Only the active
// (highest-indexed) segment may carry a torn final write — truncated
// record, zero-filled tail, or a corrupt last record — which is
// repaired by truncating back to its last valid record. Rotation seals
// segments fully fsynced, so damage in a sealed segment, a gap in the
// segment index sequence, or a damaged snapshot refuses with an error
// wrapping ErrCorrupt.
func OpenStore(dir string, opts StoreOptions) (*Store, quorum.Log, RecoveryInfo, error) {
	var info RecoveryInfo
	fail := func(err error) (*Store, quorum.Log, RecoveryInfo, error) {
		return nil, quorum.Log{}, info, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	// A leftover snap.tmp is a snapshot that never published; the
	// WAL+old snapshot still hold everything it held.
	if err := os.Remove(filepath.Join(dir, "snap.tmp")); err != nil && !os.IsNotExist(err) {
		return fail(err)
	}

	snapLog, snapN, err := readSnapshot(filepath.Join(dir, "snap"))
	if err != nil {
		return fail(err)
	}
	info.SnapshotEntries = snapN

	segs, err := listSegments(dir)
	if err != nil {
		return fail(err)
	}
	// Pre-segmentation stores kept a single file named "wal"; adopt it
	// as segment 0. A legacy file next to segment files is two
	// interleaved layouts — no write path produces that.
	legacy := filepath.Join(dir, "wal")
	if _, lerr := os.Stat(legacy); lerr == nil {
		if len(segs) > 0 {
			return fail(fmt.Errorf("%s: %w: legacy wal alongside %d segment(s)", legacy, ErrCorrupt, len(segs)))
		}
		if err := os.Rename(legacy, filepath.Join(dir, segName(0))); err != nil {
			return fail(err)
		}
		if err := syncDir(dir); err != nil {
			return fail(err)
		}
		segs = []int{0}
	} else if !os.IsNotExist(lerr) {
		return fail(lerr)
	}
	if len(segs) == 0 {
		segs = []int{0}
		f, err := createSegment(dir, 0)
		if err != nil {
			return fail(err)
		}
		f.Close()
	}
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return fail(fmt.Errorf("%w: WAL segment gap: %s then %s",
				ErrCorrupt, segName(segs[i-1]), segName(segs[i])))
		}
	}
	info.Segments = len(segs)
	info.CompactedThrough = segs[0]

	var entries []quorum.Entry
	var lastGood, lastLen, lastRecords int
	for k, idx := range segs {
		path := filepath.Join(dir, segName(idx))
		data, err := os.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		segEntries, goodLen, rerr := recoverWAL(data)
		if rerr != nil {
			return fail(fmt.Errorf("%s: %w", path, rerr))
		}
		if k < len(segs)-1 {
			// Sealed segment: rotation fsyncs it fully before the next
			// segment exists, so any torn tail here is real damage.
			if goodLen != len(data) || goodLen < headerLen {
				return fail(fmt.Errorf("%s: %w: torn tail in sealed segment (%d of %d bytes valid)",
					path, ErrCorrupt, goodLen, len(data)))
			}
		} else {
			lastGood = goodLen
			lastLen = len(data)
			lastRecords = len(segEntries)
		}
		entries = append(entries, segEntries...)
	}
	info.WALEntries = len(entries)
	info.RepairedBytes = lastLen - lastGood

	active := filepath.Join(dir, segName(segs[len(segs)-1]))
	f, err := os.OpenFile(active, os.O_RDWR, 0o644)
	if err != nil {
		return fail(err)
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		wal:        f,
		segIndex:   segs[len(segs)-1],
		segRecords: lastRecords,
		firstSeg:   segs[0],
		syncFile:   f,
	}
	s.ccond = sync.NewCond(&s.cmu)
	if lastGood < headerLen {
		// Fresh or torn-at-creation segment: (re)write the header.
		if err := s.resetWAL(); err != nil {
			f.Close()
			return fail(err)
		}
	} else if lastGood < lastLen {
		// Torn final write: discard the tail.
		if err := f.Truncate(int64(lastGood)); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fail(err)
		}
		s.walSize = int64(lastGood)
	} else {
		s.walSize = int64(lastGood)
	}
	if _, err := f.Seek(s.walSize, 0); err != nil {
		f.Close()
		return fail(err)
	}
	return s, quorum.Merge(snapLog, quorum.LogOf(entries...)), info, nil
}

// createSegment creates an empty segment file (magic written, file and
// directory fsynced) and returns it open for appending.
func createSegment(dir string, idx int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(idx)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// recoverWAL validates a raw WAL segment image (header + records). It
// returns the decoded entries of every valid record and the byte
// length of the valid prefix. goodLen < len(data) means a torn tail
// was identified and should be truncated; goodLen < headerLen means
// the header itself must be rewritten. An inconsistency that a torn
// final write cannot explain returns an error wrapping ErrCorrupt.
func recoverWAL(data []byte) (entries []quorum.Entry, goodLen int, err error) {
	if len(data) < headerLen {
		// Nothing, or a torn header write: repairable iff the bytes are
		// a prefix of the magic (the only thing ever written first).
		if bytes.Equal(data, []byte(walMagic)[:len(data)]) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("%w: %d-byte file is not a WAL prefix", ErrCorrupt, len(data))
	}
	if string(data[:headerLen]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad WAL magic %q", ErrCorrupt, data[:headerLen])
	}
	o := headerLen
	for o < len(data) {
		e, n, ok, err := readRecord(data[o:])
		if err != nil {
			return nil, 0, fmt.Errorf("%w at offset %d", err, o)
		}
		if !ok {
			// Structurally broken or CRC-failed record. A torn final
			// write explains it only if nothing meaningful follows:
			// either the breakage runs to EOF as the last record, or
			// the rest of the file is zero fill (preallocated blocks).
			if torn(data[o:], n) {
				return entries, o, nil
			}
			return nil, 0, fmt.Errorf("%w: bad record at offset %d with %d live bytes after it",
				ErrCorrupt, o, len(data)-o)
		}
		entries = append(entries, e)
		o += n
	}
	return entries, o, nil
}

// readRecord parses one record off the front of b. ok=false with
// n=the structural length means the record is complete but fails
// validation (CRC or payload decode); ok=false with n=0 means the
// record is structurally incomplete or its header is implausible.
// A non-nil error is returned only for payload bytes whose CRC passes
// but which do not decode — that is never a torn write.
func readRecord(b []byte) (e quorum.Entry, n int, ok bool, err error) {
	if len(b) < recHdrLen {
		return quorum.Entry{}, 0, false, nil
	}
	l := binary.BigEndian.Uint32(b[:4])
	if l == 0 || l > maxRecord {
		return quorum.Entry{}, 0, false, nil
	}
	if recHdrLen+int(l) > len(b) {
		return quorum.Entry{}, 0, false, nil
	}
	n = recHdrLen + int(l)
	payload := b[recHdrLen:n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(b[4:8]) {
		return quorum.Entry{}, n, false, nil
	}
	e, rest, derr := decodeEntry(payload)
	if derr != nil || len(rest) != 0 {
		return quorum.Entry{}, 0, false,
			fmt.Errorf("%w: record passes CRC but does not decode", ErrCorrupt)
	}
	return e, n, true, nil
}

// torn reports whether a validation failure at the start of b is
// explicable as a torn final write. n is readRecord's structural
// length (0 when the record was structurally incomplete or its header
// implausible). The cases:
//
//   - a CRC-failed but structurally complete record (n > 0) is torn
//     iff it runs to EOF or everything after it is zero fill;
//   - a tail shorter than one record header is always torn;
//   - an implausible length field (0 or > maxRecord) is torn only when
//     the whole remainder is zero fill — records are written in one
//     contiguous write, so a torn write leaves a *prefix*, and a
//     prefix of ≥ 4 bytes carries the true length; live garbage there
//     is corruption;
//   - a plausible length extending past EOF is a torn payload.
func torn(b []byte, n int) bool {
	if n > 0 {
		return n >= len(b) || zeroFilled(b[n:])
	}
	if len(b) < recHdrLen {
		return true
	}
	l := binary.BigEndian.Uint32(b[:4])
	if l == 0 || l > maxRecord {
		return zeroFilled(b)
	}
	return true
}

// zeroFilled reports whether every byte of b is zero.
func zeroFilled(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// appendRecord encodes one record (header + entry payload) onto b.
func appendRecord(b []byte, e quorum.Entry) ([]byte, error) {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b, err := appendEntry(b, e)
	if err != nil {
		return nil, err
	}
	payload := b[start+recHdrLen:]
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("%w: %d-byte record", ErrFrame, len(payload))
	}
	binary.BigEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b, nil
}

// Append makes one entry durable: the record is written to the WAL and
// fsynced according to StoreOptions.SyncEvery.
func (s *Store) Append(e quorum.Entry) error {
	if _, err := s.AppendBatch([]quorum.Entry{e}); err != nil {
		return err
	}
	if s.opts.SyncEvery <= 1 || s.pending >= s.opts.SyncEvery {
		return s.Sync()
	}
	return nil
}

// AppendBatch writes entries to the active segment in one contiguous
// write — no fsync — and returns the batch's commit sequence. The
// records are durable once WaitDurable(seq) returns: the pipelined
// path writes under the owner's lock, releases it, and then waits for
// a group fsync to cover the batch, so concurrent batches from many
// connections share fsyncs. An empty batch returns the current commit
// sequence (already durable or in flight).
//
//lint:ignore lock-guard wal is writer state; the owning Replica's mutex serializes writers (cmu guards only commit state)
func (s *Store) AppendBatch(entries []quorum.Entry) (int64, error) {
	if len(entries) == 0 {
		s.cmu.Lock()
		defer s.cmu.Unlock()
		return s.seq, nil
	}
	b := s.buf[:0]
	var err error
	for _, e := range entries {
		b, err = appendRecord(b, e)
		if err != nil {
			return 0, err
		}
	}
	s.buf = b[:0]
	if _, err := s.wal.Write(b); err != nil {
		return 0, err
	}
	s.walSize += int64(len(b))
	s.segRecords += len(entries)
	s.pending += len(entries)
	//lint:ignore lock-order cmu is released before rotate's Sync reacquires it; the summary-level cycle is not a real hold
	s.cmu.Lock()
	s.seq += int64(len(entries))
	target := s.seq
	s.cmu.Unlock()
	if s.opts.SegmentRecords > 0 && s.segRecords >= s.opts.SegmentRecords {
		if err := s.rotate(); err != nil {
			return 0, err
		}
	}
	return target, nil
}

// WaitDurable blocks until every record with commit sequence ≤ target
// is stable — fsynced in a WAL segment or covered by a published
// snapshot (compaction only deletes segments whose records the fsynced
// snapshot holds, and rotation syncs before sealing, so `durable` only
// ever advances over stable records). Concurrent callers elect one
// fsyncer at a time; everyone whose target the in-flight fsync covers
// shares it (group commit). An fsync failure is sticky: the store is
// poisoned and every waiter fails.
func (s *Store) WaitDurable(target int64) error {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	for s.durable < target {
		if s.syncErr != nil {
			return s.syncErr
		}
		if s.syncing {
			s.ccond.Wait()
			continue
		}
		s.syncing = true
		f := s.syncFile
		covered := s.seq
		s.cmu.Unlock()
		err := f.Sync()
		//lint:ignore lock-balance group commit drops cmu around the fsync and reacquires it; the deferred Unlock releases the final hold
		s.cmu.Lock()
		s.syncing = false
		if err != nil {
			if s.syncErr == nil {
				s.syncErr = err
			}
		} else if covered > s.durable {
			s.durable = covered
		}
		s.ccond.Broadcast()
	}
	return nil
}

// Sync flushes every batched append to stable storage.
func (s *Store) Sync() error {
	s.pending = 0
	s.cmu.Lock()
	target := s.seq
	s.cmu.Unlock()
	return s.WaitDurable(target)
}

// rotate seals the active segment and opens the next one. Sync runs
// first, so the sealed segment is fully durable and no WaitDurable
// caller can still need an fsync of the old file (their targets are
// all ≤ the now-durable sequence).
//
//lint:ignore lock-guard wal is writer state; the owning Replica's mutex serializes writers (cmu guards only commit state)
func (s *Store) rotate() error {
	if err := s.Sync(); err != nil {
		return err
	}
	f, err := createSegment(s.dir, s.segIndex+1)
	if err != nil {
		return err
	}
	old := s.wal
	s.cmu.Lock()
	s.syncFile = f
	s.cmu.Unlock()
	s.wal = f
	s.walSize = headerLen
	s.segIndex++
	s.segRecords = 0
	return old.Close()
}

// Snapshot publishes the given log as the site's snapshot — written to
// snap.tmp, fsynced, renamed over snap, directory fsynced — then
// rotates to a fresh segment and deletes the sealed segments the
// snapshot now covers, oldest-first so a crash mid-compaction leaves a
// contiguous segment suffix. The publish is atomic, and compaction at
// a published snapshot never changes the recovered state: Merge
// deduplicates by timestamp, so the snapshot plus any suffix of the
// old segments recovers the same log as the snapshot alone.
func (s *Store) Snapshot(l quorum.Log) error {
	if err := s.Sync(); err != nil {
		return err
	}
	b := make([]byte, 0, headerLen+4+l.Len()*32)
	b = append(b, snapMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(l.Len()))
	for i := 0; i < l.Len(); i++ {
		var err error
		b, err = appendRecord(b, l.Entry(i))
		if err != nil {
			return err
		}
	}
	tmp := filepath.Join(s.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snap")); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.rotate(); err != nil {
		return err
	}
	for i := s.firstSeg; i < s.segIndex; i++ {
		if err := os.Remove(filepath.Join(s.dir, segName(i))); err != nil {
			return err
		}
	}
	s.firstSeg = s.segIndex
	return syncDir(s.dir)
}

// resetWAL truncates the active segment to a fresh header.
//
//lint:ignore lock-guard wal is writer state; the owning Replica's mutex serializes writers (cmu guards only commit state)
func (s *Store) resetWAL() error {
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	if _, err := s.wal.WriteString(walMagic); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.walSize = headerLen
	s.segRecords = 0
	s.pending = 0
	return nil
}

// Close flushes and closes the WAL.
//
//lint:ignore lock-guard wal is writer state; the owning Replica's mutex serializes writers (cmu guards only commit state)
func (s *Store) Close() error {
	err := s.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// readSnapshot loads and validates the published snapshot. A missing
// snapshot is an empty log; anything structurally wrong is ErrCorrupt
// (snapshots publish atomically, so damage is never a torn write).
func readSnapshot(path string) (quorum.Log, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return quorum.Log{}, 0, nil
	}
	if err != nil {
		return quorum.Log{}, 0, err
	}
	if len(data) < headerLen+4 || string(data[:headerLen]) != snapMagic {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: bad snapshot header", path, ErrCorrupt)
	}
	count := binary.BigEndian.Uint32(data[headerLen : headerLen+4])
	b := data[headerLen+4:]
	if uint64(count) > uint64(len(b)/recHdrLen+1) {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: %d entries declared in %d bytes", path, ErrCorrupt, count, len(b))
	}
	entries := make([]quorum.Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e, n, ok, err := readRecord(b)
		if err != nil || !ok {
			return quorum.Log{}, 0, fmt.Errorf("%s: %w: bad snapshot record %d", path, ErrCorrupt, i)
		}
		entries = append(entries, e)
		b = b[n:]
	}
	if len(b) != 0 {
		return quorum.Log{}, 0, fmt.Errorf("%s: %w: %d trailing snapshot bytes", path, ErrCorrupt, len(b))
	}
	return quorum.LogOf(entries...), len(entries), nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
