package relaxd

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPTransport reaches each site at a fixed address over one cached
// connection, redialing on failure. Any I/O error closes the cached
// connection and reports the site unreachable for that call — the
// protocol treats it exactly like a crashed site and proceeds with
// the sites that do answer.
type TCPTransport struct {
	mu      sync.Mutex
	addrs   []string
	conns   []net.Conn // guarded by mu; nil entries redial lazily
	timeout time.Duration
}

// NewTCPTransport builds a transport over one address per site.
// timeout bounds each dial and each request/reply exchange; 0 means
// 5 seconds.
func NewTCPTransport(addrs []string, timeout time.Duration) *TCPTransport {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &TCPTransport{
		addrs:   append([]string(nil), addrs...),
		conns:   make([]net.Conn, len(addrs)),
		timeout: timeout,
	}
}

// Sites returns the number of configured sites.
func (t *TCPTransport) Sites() int { return len(t.addrs) }

// RoundTrip performs one framed exchange with site.
func (t *TCPTransport) RoundTrip(site int, req Message) (Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if site < 0 || site >= len(t.addrs) {
		return Message{}, fmt.Errorf("relaxd: site %d out of range", site)
	}
	c := t.conns[site]
	if c == nil {
		var err error
		c, err = net.DialTimeout("tcp", t.addrs[site], t.timeout)
		if err != nil {
			return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
		}
		t.conns[site] = c
	}
	if err := c.SetDeadline(time.Now().Add(t.timeout)); err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	if err := WriteFrame(c, req); err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	resp, err := ReadFrame(c)
	if err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	return resp, nil
}

// drop closes and forgets a failed connection. Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (RoundTrip error paths)
func (t *TCPTransport) drop(site int) {
	if c := t.conns[site]; c != nil {
		c.Close()
		t.conns[site] = nil
	}
}

// Close closes every cached connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for i, c := range t.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		t.conns[i] = nil
	}
	return first
}

// Serve accepts connections on l and answers framed requests against
// r until l is closed (which makes Accept return and Serve exit) —
// goroutine-per-connection, one length-prefixed exchange at a time
// per connection. A replica that is down answers nothing: the
// connection is closed, which the client reads as unreachability.
func Serve(l net.Listener, r *Replica) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, r)
	}
}

// serveConn runs the request loop for one connection.
func serveConn(conn net.Conn, r *Replica) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		req, err := ReadFrame(br)
		if err != nil {
			return // EOF, peer reset, or garbage: drop the connection
		}
		resp, err := r.Handle(req)
		if err != nil {
			return // down / crash hook: vanish like a dead site
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}
