package relaxd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport reaches each site at a fixed address over one cached
// connection, redialing on failure. Any I/O error closes the cached
// connection and reports the site unreachable for that call — the
// protocol treats it exactly like a crashed site and proceeds with
// the sites that do answer.
type TCPTransport struct {
	mu      sync.Mutex
	addrs   []string
	conns   []net.Conn // guarded by mu; nil entries redial lazily
	timeout time.Duration
}

// NewTCPTransport builds a transport over one address per site.
// timeout bounds each dial and each request/reply exchange; 0 means
// 5 seconds.
func NewTCPTransport(addrs []string, timeout time.Duration) *TCPTransport {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &TCPTransport{
		addrs:   append([]string(nil), addrs...),
		conns:   make([]net.Conn, len(addrs)),
		timeout: timeout,
	}
}

// Sites returns the number of configured sites.
func (t *TCPTransport) Sites() int { return len(t.addrs) }

// RoundTrip performs one framed exchange with site.
func (t *TCPTransport) RoundTrip(site int, req Message) (Message, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if site < 0 || site >= len(t.addrs) {
		return Message{}, fmt.Errorf("relaxd: site %d out of range", site)
	}
	c := t.conns[site]
	if c == nil {
		var err error
		c, err = net.DialTimeout("tcp", t.addrs[site], t.timeout)
		if err != nil {
			return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
		}
		t.conns[site] = c
	}
	if err := c.SetDeadline(time.Now().Add(t.timeout)); err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	if err := WriteFrame(c, req); err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	resp, err := ReadFrame(c)
	if err != nil {
		t.drop(site)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	return resp, nil
}

// drop closes and forgets a failed connection. Caller holds mu.
//
//lint:ignore lock-guard caller holds mu (RoundTrip error paths)
func (t *TCPTransport) drop(site int) {
	if c := t.conns[site]; c != nil {
		c.Close()
		t.conns[site] = nil
	}
}

// Close closes every cached connection.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for i, c := range t.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		t.conns[i] = nil
	}
	return first
}

// Serve accepts connections on l and answers framed requests against
// r until l is closed (which makes Accept return and Serve exit) —
// goroutine-per-connection. A connection that opens with the mux
// preamble carries concurrent correlated exchanges (serveMux); anything
// else gets the legacy one-exchange-at-a-time loop. A replica that is
// down answers nothing: the connection is closed, which the client
// reads as unreachability.
func Serve(l net.Listener, r *Replica) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, r)
	}
}

// maxInFlight bounds the handler goroutines one mux connection may
// have running at once; further frames wait in the read loop.
const maxInFlight = 64

// serveConn sniffs the framing and runs the matching request loop.
// The first four bytes decide: muxMagic starts with 'r', while a
// legacy frame starts with a 4-byte length ≤ MaxFrame whose first
// byte is always zero.
func serveConn(conn net.Conn, r *Replica) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	head, err := br.Peek(4)
	if err != nil {
		return
	}
	if string(head) == muxMagic[:4] {
		magic := make([]byte, len(muxMagic))
		if _, err := io.ReadFull(br, magic); err != nil || string(magic) != muxMagic {
			return
		}
		serveMux(conn, br, r)
		return
	}
	for {
		req, err := ReadFrame(br)
		if err != nil {
			return // EOF, peer reset, or garbage: drop the connection
		}
		resp, err := r.Handle(req)
		if err != nil {
			return // down / crash hook: vanish like a dead site
		}
		if err := WriteFrame(conn, resp); err != nil {
			return
		}
	}
}

// serveMux runs the multiplexed request loop: frames are read in
// order, handled concurrently (bounded by maxInFlight), and replies
// are written back under a write lock in completion order — the
// correlation ids let the client pair them up. The pipelined-append
// path depends on this concurrency: many in-flight MsgAppends on one
// connection ride a shared group-commit fsync window instead of
// serializing round trips.
func serveMux(conn net.Conn, br *bufio.Reader, r *Replica) {
	var (
		wmu  sync.Mutex
		wg   sync.WaitGroup
		slot = make(chan struct{}, maxInFlight)
	)
	defer wg.Wait()
	for {
		id, req, err := ReadMuxFrame(br)
		if err != nil {
			return
		}
		slot <- struct{}{}
		wg.Add(1)
		go func(id uint64, req Message) {
			defer wg.Done()
			defer func() { <-slot }()
			resp, err := r.Handle(req)
			if err != nil {
				conn.Close() // down / crash hook: vanish like a dead site
				return
			}
			wmu.Lock()
			err = WriteMuxFrame(conn, id, resp)
			wmu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(id, req)
	}
}

// PooledTransport reaches each site over one multiplexed connection
// carrying every in-flight request for that site, replacing
// round-trip-per-message: RoundTrip is safe to call concurrently, and
// concurrent calls to the same site share the connection instead of
// queueing behind each other. Any I/O error or timeout fails the
// connection (every in-flight request errors), reports the site
// unreachable for those calls, and redials lazily — kill-9 semantics,
// exactly like TCPTransport.
type PooledTransport struct {
	addrs   []string
	timeout time.Duration
	sites   []pooledSite
}

type pooledSite struct {
	mu   sync.Mutex
	conn *muxConn // nil redials lazily
}

// NewPooledTransport builds a pooled transport over one address per
// site. timeout bounds each dial and each request/reply exchange; 0
// means 5 seconds.
func NewPooledTransport(addrs []string, timeout time.Duration) *PooledTransport {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &PooledTransport{
		addrs:   append([]string(nil), addrs...),
		timeout: timeout,
		sites:   make([]pooledSite, len(addrs)),
	}
}

// Sites returns the number of configured sites.
func (t *PooledTransport) Sites() int { return len(t.addrs) }

// Concurrent marks the transport safe for concurrent RoundTrips; the
// client fans protocol steps out in parallel over it.
func (t *PooledTransport) Concurrent() bool { return true }

// RoundTrip performs one correlated exchange with site over the
// pooled connection.
func (t *PooledTransport) RoundTrip(site int, req Message) (Message, error) {
	if site < 0 || site >= len(t.addrs) {
		return Message{}, fmt.Errorf("relaxd: site %d out of range", site)
	}
	mc, err := t.conn(site)
	if err != nil {
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	resp, err := mc.roundTrip(req, t.timeout)
	if err != nil {
		t.drop(site, mc)
		return Message{}, fmt.Errorf("%w: site %d: %v", ErrDown, site, err)
	}
	return resp, nil
}

// conn returns the site's live pooled connection, dialing one if
// needed. Dials serialize per site; other sites are unaffected.
func (t *PooledTransport) conn(site int) (*muxConn, error) {
	ps := &t.sites[site]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.conn != nil && !ps.conn.failed() {
		return ps.conn, nil
	}
	ps.conn = nil
	c, err := net.DialTimeout("tcp", t.addrs[site], t.timeout)
	if err != nil {
		return nil, err
	}
	mc, err := newMuxConn(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	ps.conn = mc
	return mc, nil
}

// drop forgets a failed connection so the next call redials.
func (t *PooledTransport) drop(site int, mc *muxConn) {
	ps := &t.sites[site]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.conn == mc {
		ps.conn = nil
	}
}

// Close fails every pooled connection.
func (t *PooledTransport) Close() error {
	for i := range t.sites {
		ps := &t.sites[i]
		ps.mu.Lock()
		if ps.conn != nil {
			ps.conn.fail(errors.New("relaxd: transport closed"))
			ps.conn = nil
		}
		ps.mu.Unlock()
	}
	return nil
}

// muxConn is one multiplexed connection: a writer side issuing
// correlation ids and a reader goroutine pairing replies back to the
// in-flight requests.
type muxConn struct {
	c   net.Conn
	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Message // in-flight requests, by id
	err     error                   // sticky: set once the conn is dead
}

// newMuxConn writes the preamble and starts the reader.
func newMuxConn(c net.Conn) (*muxConn, error) {
	if _, err := c.Write([]byte(muxMagic)); err != nil {
		return nil, err
	}
	mc := &muxConn{c: c, pending: make(map[uint64]chan Message)}
	go mc.readLoop()
	return mc, nil
}

// readLoop dispatches replies to their waiting requests until the
// connection dies, then fails every in-flight request.
func (mc *muxConn) readLoop() {
	br := bufio.NewReader(mc.c)
	for {
		id, m, err := ReadMuxFrame(br)
		if err != nil {
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		ch := mc.pending[id]
		delete(mc.pending, id)
		mc.mu.Unlock()
		if ch != nil {
			ch <- m // buffered; never blocks
		}
	}
}

// fail marks the connection dead and wakes every in-flight request
// with a closed channel.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err == nil {
		mc.err = err
	}
	pend := mc.pending
	mc.pending = make(map[uint64]chan Message)
	mc.mu.Unlock()
	mc.c.Close()
	for _, ch := range pend {
		close(ch)
	}
}

// failed reports whether the connection is dead.
func (mc *muxConn) failed() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

// roundTrip issues one correlated exchange. A timeout fails the whole
// connection: an unresponsive site is indistinguishable from a dead
// one, and the stream's remaining replies can no longer be trusted to
// arrive.
func (mc *muxConn) roundTrip(req Message, timeout time.Duration) (Message, error) {
	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		return Message{}, err
	}
	id := mc.nextID
	mc.nextID++
	ch := make(chan Message, 1)
	mc.pending[id] = ch
	mc.mu.Unlock()

	mc.wmu.Lock()
	mc.c.SetWriteDeadline(time.Now().Add(timeout))
	err := WriteMuxFrame(mc.c, id, req)
	mc.wmu.Unlock()
	if err != nil {
		mc.forget(id)
		mc.fail(err)
		return Message{}, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			mc.mu.Lock()
			err := mc.err
			mc.mu.Unlock()
			return Message{}, err
		}
		return m, nil
	case <-timer.C:
		mc.forget(id)
		mc.fail(errors.New("relaxd: request timed out"))
		return Message{}, errors.New("relaxd: request timed out")
	}
}

// forget withdraws an in-flight request (its reply, if it ever comes,
// is dropped by the read loop).
func (mc *muxConn) forget(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}
