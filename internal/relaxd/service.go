package relaxd

import (
	"fmt"
	"net"
	"path/filepath"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/specs"
)

// PQClientConfig returns a ClientConfig pre-wired for the replicated
// taxi priority queue — the same object, η, and responder the
// deterministic cluster soaks run — over the given transport at the
// strongest rung of quorum.TaxiAssignments.
func PQClientConfig(t Transport) ClientConfig {
	return ClientConfig{
		Transport: t,
		Quorums:   quorum.TaxiAssignments(t.Sites())["Q1Q2"],
		Base:      specs.PriorityQueue(),
		Fold:      quorum.PQFold(),
		Respond:   cluster.PQResponder,
	}
}

// PQCertify returns the certification gate the taxi service uses for
// snapshot shipping: shipped state must replay clean at the strongest
// rung of the taxi lattice before the joiner serves. A violation is
// reported as wrapping ErrCorrupt — shipped state that does not
// certify is refused exactly like a damaged store.
func PQCertify() func(history.History) error {
	lat := core.TaxiSimpleLattice()
	return func(h history.History) error {
		if v := relaxcheck.Certify(lat, nil, "Q1Q2", h); v != nil {
			return fmt.Errorf("%w: %s", ErrCorrupt, v.Error())
		}
		return nil
	}
}

// OpenSites opens one durable replica per site under dir/site<i>
// (ephemeral replicas when dir is empty) — the goroutine-per-site
// building block shared by the local service, cmd/relaxd, and the
// crash-injection harness.
func OpenSites(dir string, sites int, opts StoreOptions) ([]*Replica, error) {
	replicas := make([]*Replica, sites)
	for i := range replicas {
		sub := ""
		if dir != "" {
			sub = filepath.Join(dir, fmt.Sprintf("site%d", i))
		}
		r, _, err := OpenReplica(i, sub, opts)
		if err != nil {
			for _, open := range replicas[:i] {
				open.Close()
			}
			return nil, err
		}
		replicas[i] = r
	}
	return replicas, nil
}

// SiteServer is one replica serving TCP on its own listener, with the
// accept loop on its own goroutine — the goroutine-per-site shape.
type SiteServer struct {
	Replica *Replica
	lis     net.Listener
}

// ListenSite starts serving r on addr (host:0 picks a free port).
func ListenSite(addr string, r *Replica) (*SiteServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &SiteServer{Replica: r, lis: lis}
	go func() {
		// Serve exits when the listener closes; nothing to report.
		Serve(lis, r)
	}()
	return s, nil
}

// Addr returns the listener's address.
func (s *SiteServer) Addr() string { return s.lis.Addr().String() }

// Close stops accepting and closes the replica cleanly.
func (s *SiteServer) Close() error {
	err := s.lis.Close()
	if cerr := s.Replica.Close(); err == nil {
		err = cerr
	}
	return err
}

// Kill hard-stops the server: the listener closes and the replica
// crashes with no final flush — SIGKILL semantics for crash harnesses.
// Only what the WAL already made durable survives a later Restart.
func (s *SiteServer) Kill() {
	s.lis.Close()
	s.Replica.Crash()
}
