package relaxd

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"relaxlattice/internal/quorum"
)

// The segmented-WAL battery: rotation geometry, the torture cases
// replayed across a segment boundary, the compaction-soundness
// property (compacting at any published snapshot never changes the
// recovered state), and the group-commit durability contract under
// concurrent waiters.

// segmentsOnDisk lists the segment indexes present in dir.
func segmentsOnDisk(t *testing.T, dir string) []int {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestSegmentRotationReopen(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(11)
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// 11 records at 4 per segment: wal-000000..wal-000002 (4+4+3).
	if got := segmentsOnDisk(t, dir); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("segments on disk: %v, want [0 1 2]", got)
	}

	s2, log, info, err := OpenStore(dir, StoreOptions{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if info.Segments != 3 || info.CompactedThrough != 0 {
		t.Fatalf("info = %+v, want 3 segments compacted through 0", info)
	}
	if info.WALEntries != len(entries) || info.RepairedBytes != 0 {
		t.Fatalf("info = %+v, want %d clean WAL entries", info, len(entries))
	}
	if !log.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("reopened log diverges:\n got %s\nwant %s", log, quorum.LogOf(entries...))
	}
	// Appending after reopen continues the active segment.
	next := quorum.Entry{TS: ts(100, 6), Op: entries[0].Op}
	if err := s2.Append(next); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := segmentsOnDisk(t, dir); len(got) != 4 {
		t.Fatalf("after one more append: segments %v, want rotation to 4 segments", got)
	}
}

func TestSnapshotCompactsSealedSegments(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(10)
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Snapshot(quorum.LogOf(entries...)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	segs := segmentsOnDisk(t, dir)
	if len(segs) != 1 {
		t.Fatalf("after compaction: segments %v, want exactly one fresh segment", segs)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, log, info, err := OpenStore(dir, StoreOptions{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if info.SnapshotEntries != len(entries) || info.WALEntries != 0 {
		t.Fatalf("info = %+v, want all %d entries in the snapshot", info, len(entries))
	}
	if info.CompactedThrough != segs[0] || info.Segments != 1 {
		t.Fatalf("info = %+v, want compacted through %d", info, segs[0])
	}
	if !log.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("post-compaction log diverges")
	}
}

// TestCompactionSoundnessAtEveryPoint is the compaction-soundness
// property: for every prefix point k of a history, a store that
// published (and compacted at) a snapshot of the first k entries
// recovers exactly the same log as a store that never compacted.
func TestCompactionSoundnessAtEveryPoint(t *testing.T) {
	entries := serialPQEntries(14)
	for k := 0; k <= len(entries); k++ {
		plainDir, compDir := t.TempDir(), t.TempDir()
		opts := StoreOptions{SegmentRecords: 3}

		plain, _, _, err := OpenStore(plainDir, opts)
		if err != nil {
			t.Fatalf("k=%d: OpenStore plain: %v", k, err)
		}
		comp, _, _, err := OpenStore(compDir, opts)
		if err != nil {
			t.Fatalf("k=%d: OpenStore comp: %v", k, err)
		}
		for i, e := range entries {
			if err := plain.Append(e); err != nil {
				t.Fatalf("k=%d: plain append %d: %v", k, i, err)
			}
			if err := comp.Append(e); err != nil {
				t.Fatalf("k=%d: comp append %d: %v", k, i, err)
			}
			if i+1 == k {
				if err := comp.Snapshot(quorum.LogOf(entries[:k]...)); err != nil {
					t.Fatalf("k=%d: snapshot: %v", k, err)
				}
			}
		}
		if err := plain.Close(); err != nil {
			t.Fatalf("k=%d: plain close: %v", k, err)
		}
		if err := comp.Close(); err != nil {
			t.Fatalf("k=%d: comp close: %v", k, err)
		}

		_, plainLog, _, err := OpenStore(plainDir, opts)
		if err != nil {
			t.Fatalf("k=%d: reopen plain: %v", k, err)
		}
		_, compLog, info, err := OpenStore(compDir, opts)
		if err != nil {
			t.Fatalf("k=%d: reopen comp: %v", k, err)
		}
		if !plainLog.Equal(compLog) {
			t.Fatalf("k=%d: compaction changed the recovered state:\nplain %s\n comp %s", k, plainLog, compLog)
		}
		if k > 0 && info.SnapshotEntries != k {
			t.Fatalf("k=%d: reopened snapshot holds %d entries", k, info.SnapshotEntries)
		}
	}
}

// TestWALTortureTruncateAcrossSegmentBoundary replays the truncation
// torture at every byte offset of the *active* segment of a
// multi-segment store: recovery repairs the torn tail and keeps every
// sealed segment's records.
func TestWALTortureTruncateAcrossSegmentBoundary(t *testing.T) {
	entries := serialPQEntries(11)
	const sealedRecords = 9 // rotation at every 3rd record: 3 sealed segments, 2 records active
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segmentsOnDisk(t, dir)
	active := filepath.Join(dir, segName(segs[len(segs)-1]))
	img, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{headerLen}
	for _, e := range entries[sealedRecords:] {
		rec, err := appendRecord(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, bounds[len(bounds)-1]+len(rec))
	}
	if bounds[len(bounds)-1] != len(img) {
		t.Fatalf("active segment is %d bytes, bounds end at %d", len(img), bounds[len(bounds)-1])
	}

	for o := 0; o <= len(img); o++ {
		caseDir := t.TempDir()
		copyStore(t, dir, caseDir)
		if err := os.WriteFile(filepath.Join(caseDir, segName(segs[len(segs)-1])), img[:o], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, log, info, err := OpenStore(caseDir, StoreOptions{SegmentRecords: 3})
		if err != nil {
			t.Fatalf("truncate active at %d: open refused a torn tail: %v", o, err)
		}
		want := sealedRecords + completeRecords(bounds, o)
		requireCertifiedPrefix(t, log, entries, want)
		// Below headerLen the whole torn header counts as repaired.
		wantRepaired := o
		if o >= headerLen {
			wantRepaired = o - bounds[completeRecords(bounds, o)]
		}
		if info.RepairedBytes != wantRepaired {
			t.Fatalf("truncate at %d: repaired %d bytes, want %d", o, info.RepairedBytes, wantRepaired)
		}
		requireUsable(t, s2, log, entries)
	}
}

// TestWALTortureSealedSegmentRefuses damages each sealed segment —
// truncation, zero fill, and a CRC bit flip on its final record — and
// requires the typed refusal: rotation fsyncs a segment fully before
// sealing it, so damage there is never explicable as a torn write.
func TestWALTortureSealedSegmentRefuses(t *testing.T) {
	entries := serialPQEntries(10)
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 3})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segmentsOnDisk(t, dir)
	for _, sealed := range segs[:len(segs)-1] {
		path := filepath.Join(dir, segName(sealed))
		img, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutations := map[string][]byte{
			"truncated": img[:len(img)-3],
			"zero-tail": append(append([]byte(nil), img[:len(img)-5]...), 0, 0, 0, 0, 0),
			"bit-flip":  flipByte(img, headerLen+4),
		}
		for name, mut := range mutations {
			caseDir := t.TempDir()
			copyStore(t, dir, caseDir)
			if err := os.WriteFile(filepath.Join(caseDir, segName(sealed)), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, _, err := OpenStore(caseDir, StoreOptions{SegmentRecords: 3})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("sealed segment %d %s: got %v, want ErrCorrupt", sealed, name, err)
			}
		}
	}
	// A gap in the segment sequence is the same refusal.
	caseDir := t.TempDir()
	copyStore(t, dir, caseDir)
	if err := os.Remove(filepath.Join(caseDir, segName(segs[1]))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenStore(caseDir, StoreOptions{SegmentRecords: 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment gap: got %v, want ErrCorrupt", err)
	}
}

// TestGroupCommitConcurrentWaiters drives concurrent append+wait
// cycles through one store — the pipelined path — and checks the
// durability contract: every waited-on batch survives a reopen.
func TestGroupCommitConcurrentWaiters(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := OpenStore(dir, StoreOptions{SegmentRecords: 16})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	entries := serialPQEntries(96)
	const workers = 8
	var (
		mu   sync.Mutex // the single-writer serialization the Replica provides
		next int
		wg   sync.WaitGroup
		errs = make(chan error, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(entries) {
					mu.Unlock()
					return
				}
				batch := entries[next:min(next+3, len(entries))]
				next += len(batch)
				target, err := s.AppendBatch(batch)
				mu.Unlock()
				if err != nil {
					errs <- err
					return
				}
				if err := s.WaitDurable(target); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	// No Close, no final Sync: WaitDurable already promised durability.
	s.wal.Close()
	_, log, _, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !log.Equal(quorum.LogOf(entries...)) {
		t.Fatalf("reopen lost waited-on records: got %d entries, want %d", log.Len(), len(entries))
	}
}

// copyStore clones a store directory file by file.
func copyStore(t *testing.T, from, to string) {
	t.Helper()
	ents, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		data, err := os.ReadFile(filepath.Join(from, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// flipByte returns a copy of img with one bit flipped at off.
func flipByte(img []byte, off int) []byte {
	mut := append([]byte(nil), img...)
	mut[off] ^= 1
	return mut
}
