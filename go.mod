module relaxlattice

go 1.22
