package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

// sampleStream builds a small two-root span stream on a logical clock.
func sampleStream(t *testing.T) []byte {
	t.Helper()
	tr := trace.NewTracer("test", nil)
	root := tr.Begin("op", obs.KV{K: "rung", V: "Q1Q2"})
	s1 := root.Child("step1")
	s1.End()
	s2 := root.Child("step2")
	s2.Link(s1.ID())
	s2.End()
	root.End()
	tr.Begin("op").End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunTableAndJSON(t *testing.T) {
	stream := sampleStream(t)
	var out bytes.Buffer
	if err := run([]string{"-json", "-"}, bytes.NewReader(stream), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"spans=4", "roots=2", "links=1", "critical",
		`"by_name":[`, `"by_rung":[`, `"rung":"Q1Q2"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Byte-determinism of the full report.
	var out2 bytes.Buffer
	if err := run([]string{"-json", "-"}, bytes.NewReader(stream), &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("reports differ across identical inputs")
	}
}

// TestChromeExportSchema validates the Chrome trace-event export
// against the format's structural contract: a traceEvents array of
// complete ("ph":"X") events with name/ts/dur/pid/tid, parseable as
// JSON.
func TestChromeExportSchema(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "spans.jsonl")
	if err := os.WriteFile(stream, sampleStream(t), 0o644); err != nil {
		t.Fatal(err)
	}
	chrome := filepath.Join(dir, "chrome.json")
	var out bytes.Buffer
	if err := run([]string{"-table=false", "-chrome", chrome, stream}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	tids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Cat != "span" {
			t.Fatalf("event %+v not a complete span event", e)
		}
		if e.Name == "" || e.TS == nil || e.Dur == nil || e.PID != 1 || e.TID < 1 {
			t.Fatalf("event %+v missing required fields", e)
		}
		if _, ok := e.Args["id"]; !ok {
			t.Fatalf("event %+v has no span id in args", e)
		}
		tids[e.TID] = true
	}
	if len(tids) != 2 {
		t.Fatalf("expected 2 root tids, got %v", tids)
	}
}

func TestRunRejectsExtraArgs(t *testing.T) {
	if err := run([]string{"a", "b"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("two positional args accepted")
	}
}
