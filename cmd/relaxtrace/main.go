// relaxtrace is the critical-path analyzer for causal span streams
// (internal/obs/trace): it reads the JSONL span stream a traced run
// exports, rebuilds the happens-before DAG, and attributes logical
// time per protocol step and per degradation rung — including each
// root operation's critical path. It can also export the stream as
// Chrome trace-event JSON for chrome://tracing or Perfetto.
//
// Everything it prints is a pure function of the input bytes, so its
// outputs are themselves determinism-checkable artifacts: two runs of
// the same soak at different GOMAXPROCS must produce byte-identical
// relaxtrace reports.
//
// Usage:
//
//	relaxtrace [-table] [-json F] [-chrome F] [spans.jsonl]
//
// With no file argument the stream is read from stdin. -table (on by
// default) prints the fixed-width attribution report; -json writes the
// analysis as one JSON object; -chrome writes the Chrome trace-event
// export.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"relaxlattice/internal/obs/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("relaxtrace", flag.ContinueOnError)
	table := fs.Bool("table", true, "print the fixed-width attribution table")
	jsonPath := fs.String("json", "", "write the analysis as JSON to this file (- for stdout)")
	chromePath := fs.String("chrome", "", "write Chrome trace-event JSON to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("at most one span stream, got %d", fs.NArg())
	}

	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spans, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}

	an := trace.Analyze(spans)
	if *table {
		if err := an.WriteTable(stdout); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		b := append(an.AppendJSON(nil), '\n')
		if err := writeOut(*jsonPath, stdout, func(w io.Writer) error {
			_, err := w.Write(b)
			return err
		}); err != nil {
			return err
		}
	}
	if *chromePath != "" {
		if err := writeOut(*chromePath, stdout, func(w io.Writer) error {
			return trace.WriteChromeTrace(w, spans)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeOut writes through fn to the named file, or to stdout for "-".
func writeOut(path string, stdout io.Writer, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
