package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/relaxd"
)

// startSites serves n durable sites on loopback and returns their
// addresses as a -peers value.
func startSites(t *testing.T, n int) string {
	t.Helper()
	replicas, err := relaxd.OpenSites(t.TempDir(), n, relaxd.StoreOptions{SyncEvery: 8})
	if err != nil {
		t.Fatalf("OpenSites: %v", err)
	}
	addrs := make([]string, n)
	for i, r := range replicas {
		s, err := relaxd.ListenSite("127.0.0.1:0", r)
		if err != nil {
			t.Fatalf("ListenSite %d: %v", i, err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = s.Addr()
	}
	return strings.Join(addrs, ",")
}

func TestWorkloadCertifyAndHistoryExport(t *testing.T) {
	peers := startSites(t, 3)
	hist := filepath.Join(t.TempDir(), "hist.txt")

	var out bytes.Buffer
	if err := run([]string{"-peers", peers, "-ops", "60", "-seed", "5",
		"-clients", "2", "-certify", "-history", hist}, &out); err != nil {
		t.Fatalf("workload: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "certify: clean at rung Q1Q2") {
		t.Fatalf("no clean certification:\n%s", out.String())
	}

	// A second sequential run must use clock identities above the first
	// run's (3 sites + 2 clients → first free identity is 6).
	out.Reset()
	if err := run([]string{"-peers", peers, "-ops", "40", "-seed", "6",
		"-client-base", "6", "-certify", "-history", hist}, &out); err != nil {
		t.Fatalf("second workload: %v\n%s", err, out.String())
	}

	// The accumulated export is exactly what the audit sidecar replays;
	// certify it offline the same way.
	f, err := os.Open(hist)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := history.ReadLines(f)
	if err != nil {
		t.Fatalf("exported history does not parse: %v", err)
	}
	if len(h) == 0 {
		t.Fatal("exported history is empty")
	}
	if v := relaxcheck.Certify(core.TaxiSimpleLattice(), nil, "Q1Q2", h); v != nil {
		t.Fatalf("exported history fails offline certification: %+v", v)
	}
}

func TestOneShotOps(t *testing.T) {
	peers := startSites(t, 3)
	var out bytes.Buffer
	if err := run([]string{"-peers", peers, "-op", "Enq(5)"}, &out); err != nil {
		t.Fatalf("Enq(5): %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Enq(5)/Ok()") {
		t.Fatalf("unexpected Enq output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-peers", peers, "-op", "Deq", "-client-base", "5"}, &out); err != nil {
		t.Fatalf("Deq: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Deq()/Ok(5)") {
		t.Fatalf("Deq did not return the enqueued element:\n%s", out.String())
	}
	// Deq on the now-empty queue has no consistent response: the
	// operation fails and the exit status says so.
	out.Reset()
	if err := run([]string{"-peers", peers, "-op", "Deq", "-client-base", "6"}, &out); err == nil {
		t.Fatalf("Deq on empty queue succeeded:\n%s", out.String())
	}
}

func TestRungGating(t *testing.T) {
	peers := startSites(t, 3)
	var out bytes.Buffer
	// A lower rung still executes (same sites, weaker gate)...
	if err := run([]string{"-peers", peers, "-ops", "20", "-rung", "Q1",
		"-certify"}, &out); err != nil {
		t.Fatalf("rung Q1: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "certify: clean at rung Q1") {
		t.Fatalf("no clean Q1 certification:\n%s", out.String())
	}
	// ...an unknown rung is rejected.
	if err := run([]string{"-peers", peers, "-ops", "1", "-rung", "Q3"}, &out); err == nil {
		t.Fatal("unknown rung accepted")
	}
}

func TestFlagAndOpValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-ops", "1"}, &out); err == nil {
		t.Fatal("missing -peers accepted")
	}
	if err := run([]string{"-peers", "a,b,c"}, &out); err == nil {
		t.Fatal("neither -op nor -ops accepted")
	}
	if err := run([]string{"-peers", "a,b,c", "-op", "Push(1)"}, &out); err == nil {
		t.Fatal("bad -op accepted")
	}
	if _, err := parseInvocation("Enq(x)"); err == nil {
		t.Fatal("Enq(x) parsed")
	}
}
