// relaxcli is the protocol client for a running relaxd service: it
// executes the paper's three-step quorum protocol over TCP at a chosen
// degradation-ladder rung, either as a one-shot operation (-op) or as
// a seeded workload (-ops), with an optional live relaxation checker
// (-certify) holding the observed history to the claimed rung and an
// exported history file (-history, append) that the audit sidecar
// (relaxsoak -mode audit -lattice taxi) replays independently.
//
// Usage:
//
//	relaxcli -peers 127.0.0.1:7410,127.0.0.1:7411,... [-rung Q1Q2|Q1|Q2|none]
//	         [-op 'Enq(5)' | -ops N] [-seed N] [-clients N] [-client-base N]
//	         [-deq-ratio F] [-certify] [-history F] [-transport pooled|simple]
//
// The default transport is pooled: one multiplexed connection per site
// carrying every in-flight request, with protocol steps fanned out in
// parallel. -transport simple keeps the one-round-trip-at-a-time
// connection per site; the differential battery holds the two to
// identical results, so the choice is latency, never semantics.
//
// Exit status is nonzero if the run was degraded below the claimed
// rung (-certify), or if a one-shot operation fails.
//
// Sequential invocations against the same service must use disjoint
// Lamport clock identities: pass -client-base so run k's clients are
// numbered above run k-1's (the clocks themselves re-synchronize from
// the log's timestamps on the first operation). With -certify against
// a warm service, also pass the same -history file every run: the
// checker replays the accumulated export as its prefix, since the
// object's history starts at genesis, not at this run's first op.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/relaxd"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxcli:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("relaxcli", flag.ContinueOnError)
	peers := fs.String("peers", "", "comma-separated site addresses, in site order (required)")
	rung := fs.String("rung", "Q1Q2", "degradation-ladder rung to execute at: Q1Q2, Q1, Q2, or none")
	opText := fs.String("op", "", "one-shot operation: 'Enq(5)' or 'Deq'")
	ops := fs.Int("ops", 0, "run a seeded workload of N operations")
	seed := fs.Int64("seed", 1987, "workload seed")
	clients := fs.Int("clients", 1, "protocol clients the workload round-robins over")
	clientBase := fs.Int("client-base", 0, "first client clock identity (0 = sites+1); later runs against the same service must start above earlier runs'")
	deqRatio := fs.Float64("deq-ratio", 0.45, "workload dequeue fraction")
	certify := fs.Bool("certify", false, "attach the live relaxation checker and fail if the history escapes the claimed rung")
	historyPath := fs.String("history", "", "append completed operations to this history file (the audit sidecar's input)")
	transport := fs.String("transport", "pooled", "wire transport: pooled (multiplexed, parallel fanout) or simple (one round trip at a time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *peers == "" {
		return fmt.Errorf("-peers is required")
	}
	if (*opText == "") == (*ops == 0) {
		return fmt.Errorf("exactly one of -op or -ops is required")
	}
	addrs := strings.Split(*peers, ",")
	n := len(addrs)
	assignments := quorum.TaxiAssignments(n)
	gate, ok := assignments[*rung]
	if !ok {
		return fmt.Errorf("unknown rung %q (have Q1Q2, Q1, Q2, none)", *rung)
	}

	var checker *relaxcheck.Checker
	if *certify {
		// Every client in this run executes the same rung, so the
		// nominal per-rung constraint sets are sound claims here (mixed
		// executions are what makes them unsound — see the discussion on
		// relaxcheck.TaxiClaims vs TaxiRungLevels).
		lat := core.TaxiSimpleLattice()
		u := lat.Universe
		checker = relaxcheck.New(lat, relaxcheck.Options{Claims: map[string]lattice.Set{
			"Q1Q2": u.All(),
			"Q1":   u.Named(core.ConstraintQ1),
			"Q2":   u.Named(core.ConstraintQ2),
			"none": 0,
		}})
		// The checker needs the object's history from genesis, not from
		// this run's first operation: replay the accumulated export so a
		// Deq of an element some earlier run enqueued is not misread as
		// a violation. The claim covers only this run's operations.
		if err := replayHistory(checker, *historyPath); err != nil {
			return err
		}
		checker.ObserveClaim(-1, *rung)
	}

	var tr relaxd.Transport
	switch *transport {
	case "pooled":
		p := relaxd.NewPooledTransport(addrs, 0)
		defer p.Close()
		tr = p
	case "simple":
		s := relaxd.NewTCPTransport(addrs, 0)
		defer s.Close()
		tr = s
	default:
		return fmt.Errorf("unknown transport %q (want pooled or simple)", *transport)
	}
	base := *clientBase
	if base <= 0 {
		base = n + 1
	}
	cls := make([]*relaxd.Client, *clients)
	for i := range cls {
		cfg := relaxd.PQClientConfig(tr)
		cfg.Quorums = assignments["Q1Q2"]
		if checker != nil {
			cfg.Audit = checker
		}
		cls[i] = relaxd.NewClient(cfg, base+i)
	}
	exec := func(cl *relaxd.Client, inv history.Invocation) (history.Op, error) {
		if *rung == "Q1Q2" {
			return cl.Execute(inv)
		}
		return cl.ExecuteUnder(inv, gate, *rung)
	}

	var observed history.History
	var failure error
	if *opText != "" {
		inv, err := parseInvocation(*opText)
		if err != nil {
			return err
		}
		op, err := exec(cls[0], inv)
		if err != nil {
			failure = err
			fmt.Fprintf(w, "relaxcli: %s failed: %v\n", inv, err)
		} else {
			observed = append(observed, op)
			fmt.Fprintf(w, "relaxcli: %s\n", op)
		}
	} else {
		rng := rand.New(rand.NewSource(*seed))
		counts := map[string]int{}
		for i := 0; i < *ops; i++ {
			var inv history.Invocation
			if rng.Float64() < *deqRatio {
				inv = history.DeqInv()
			} else {
				inv = history.EnqInv(rng.Intn(9) + 1)
			}
			op, err := exec(cls[i%len(cls)], inv)
			switch {
			case err == nil:
				observed = append(observed, op)
				counts["ok"]++
			case errors.Is(err, cluster.ErrNoResponse):
				counts["no-response"]++ // e.g. Deq on an empty queue
			case errors.Is(err, cluster.ErrUnavailable):
				counts["unavailable"]++
			case errors.Is(err, relaxd.ErrNoQuorumAck):
				counts["no-quorum-ack"]++
			default:
				return fmt.Errorf("op %d (%s): %w", i, inv, err)
			}
		}
		fmt.Fprintf(w, "relaxcli: %d ops: %d ok, %d no-response, %d unavailable, %d no-quorum-ack\n",
			*ops, counts["ok"], counts["no-response"], counts["unavailable"], counts["no-quorum-ack"])
	}

	if *historyPath != "" && len(observed) > 0 {
		if err := appendHistory(*historyPath, observed); err != nil {
			return err
		}
	}
	if checker != nil {
		if v := checker.Violation(); v != nil {
			fmt.Fprintf(w, "relaxcli: certify: VIOLATION at op %d: %s\n", v.Step, v.Kind)
			return fmt.Errorf("history escaped the claimed rung %s", *rung)
		}
		fmt.Fprintf(w, "relaxcli: certify: clean at rung %s (level %s, %d ops)\n",
			*rung, checker.Level(), checker.Steps())
	}
	return failure
}

// parseInvocation accepts 'Enq(5)', 'Deq', or 'Deq()'.
func parseInvocation(s string) (history.Invocation, error) {
	s = strings.TrimSpace(s)
	if s == "Deq" || s == "Deq()" {
		return history.DeqInv(), nil
	}
	if strings.HasPrefix(s, "Enq(") && strings.HasSuffix(s, ")") {
		e, err := strconv.Atoi(s[len("Enq(") : len(s)-1])
		if err == nil {
			return history.EnqInv(e), nil
		}
	}
	return history.Invocation{}, fmt.Errorf("cannot parse operation %q (want 'Enq(N)' or 'Deq')", s)
}

// replayHistory feeds an existing history export through the checker —
// the prefix context for certifying a run against a warm service. A
// missing file (or no -history at all) is an empty prefix.
func replayHistory(c *relaxcheck.Checker, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := history.ReadLines(f)
	if err != nil {
		return fmt.Errorf("replaying %s: %w", path, err)
	}
	for _, op := range h {
		c.ObserveOp(op)
	}
	return nil
}

// appendHistory appends ops to the history file, one per line —
// accumulating one auditable history across sequential runs.
func appendHistory(path string, h history.History) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := history.WriteLines(f, h); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
