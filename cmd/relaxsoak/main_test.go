package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAuditKillResumeMatchesUninterrupted drives the audit sidecar the
// way CI's kill-resume smoke does, entirely through the CLI surface:
// export a history from a small cluster soak, audit it with a mid-run
// stop (the simulated kill), resume from the checkpoint, and require
// the resumed run's final checkpoint to be byte-identical to the
// uninterrupted audit's.
func TestAuditKillResumeMatchesUninterrupted(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "hist.txt")
	ck := filepath.Join(dir, "ck.json")
	ckResumed := filepath.Join(dir, "ck_resumed.json")
	ckFull := filepath.Join(dir, "ck_full.json")

	var out bytes.Buffer
	if err := run([]string{"-mode", "cluster", "-workload", "bursty",
		"-clients", "20", "-ops", "400", "-seed", "11", "-calm",
		"-history", hist}, &out); err != nil {
		t.Fatalf("soak: %v\n%s", err, out.String())
	}

	out.Reset()
	if err := run([]string{"-mode", "audit", "-history", hist, "-lattice", "taxi",
		"-checkpoint", ck, "-checkpoint-every", "100", "-stop-at", "150"}, &out); err != nil {
		t.Fatalf("audit (killed): %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("resumable from the checkpoint")) {
		t.Fatalf("killed audit did not report resumability:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-mode", "audit", "-history", hist, "-lattice", "taxi",
		"-resume", ck, "-checkpoint", ckResumed}, &out); err != nil {
		t.Fatalf("audit (resumed): %v\n%s", err, out.String())
	}
	resumedReport := out.String()

	out.Reset()
	if err := run([]string{"-mode", "audit", "-history", hist, "-lattice", "taxi",
		"-checkpoint", ckFull}, &out); err != nil {
		t.Fatalf("audit (uninterrupted): %v\n%s", err, out.String())
	}

	a, err := os.ReadFile(ckResumed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ckFull)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed audit's final checkpoint differs from the uninterrupted audit's")
	}
	// Checkpoints are valid JSON with the versioned schema.
	var doc map[string]any
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("checkpoint is not JSON: %v", err)
	}
	if doc["version"] != float64(1) {
		t.Fatalf("checkpoint version = %v", doc["version"])
	}
	if !bytes.Contains([]byte(resumedReport), []byte("stays inside")) {
		t.Fatalf("resumed audit verdict:\n%s", resumedReport)
	}
}

// TestLonghaulMode runs a compressed kill-9 soak through the CLI
// surface: real TCP sites, continuous hard kills, at least one
// wipe-and-rejoin via snapshot shipping (wipe-every 1 makes every kill
// a wipe), and the three certification verdicts. The full-length run is
// CI's relaxd-longhaul job; this keeps the battery in tier-1.
func TestLonghaulMode(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "longhaul-hist.txt")
	var out bytes.Buffer
	if err := run([]string{"-mode", "longhaul", "-sites", "5", "-clients", "4",
		"-ops", "200", "-seed", "23", "-kill-every", "40ms", "-wipe-every", "1",
		"-history", hist}, &out); err != nil {
		t.Fatalf("longhaul: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"longhaul live-checker",
		"longhaul merged-log",
		"longhaul sidecar-replay",
		"verdict=certified",
		"survived the kill-9 soak",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("longhaul report missing %q:\n%s", want, out.String())
		}
	}
	if bytes.Contains(out.Bytes(), []byte("wipes=0")) {
		t.Fatalf("longhaul never exercised a wipe-and-rejoin:\n%s", out.String())
	}
	if b, err := os.ReadFile(hist); err != nil || len(b) == 0 {
		t.Fatalf("longhaul history export missing (%v, %d bytes)", err, len(b))
	}
}

// TestAuditRejectsMissingHistory pins the flag contract.
func TestAuditRejectsMissingHistory(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "audit"}, &out); err == nil {
		t.Fatal("audit without -history succeeded")
	}
}

// TestSoakSpansAndFlightFlags: -spans writes a non-empty span stream
// deterministic across invocations.
func TestSoakSpansAndFlightFlags(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(name string) []byte {
		p := filepath.Join(dir, name)
		var out bytes.Buffer
		if err := run([]string{"-mode", "cluster", "-workload", "uniform",
			"-clients", "10", "-ops", "200", "-seed", "3", "-calm",
			"-spans", p}, &out); err != nil {
			t.Fatalf("soak: %v\n%s", err, out.String())
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	s1 := runOnce("s1.jsonl")
	if len(s1) == 0 {
		t.Fatal("no spans written")
	}
	if !bytes.Equal(s1, runOnce("s2.jsonl")) {
		t.Fatal("span streams differ across identical invocations")
	}
}
