// The long-haul mode: a real networked relaxd service — TCP listeners,
// durable segmented WALs, pooled multiplexed transport — soaked under
// sustained client load while a killer goroutine SIGKILLs sites
// continuously and periodically wipes a victim's store entirely,
// forcing a rejoin via snapshot shipping. The online relaxation
// checker audits every completed operation throughout, the final
// merged log must certify at the strongest taxi rung, and the whole
// observed history is replayed through a fresh checker at the end (the
// audit-sidecar discipline, in-process). Operations serialize through
// a global mutex — the same concurrency grain the deterministic
// cluster gives the protocol — so the rung claim is the one the sim
// oracle proves; the concurrency under test is everything below that:
// kills and rejoins racing live ops, parallel protocol fanout over the
// mux, and the group-commit window inside each store.
package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/relaxd"
)

// longhaulConfig gathers the long-haul flags.
type longhaulConfig struct {
	sites       int
	clients     int
	ops         int
	seed        int64
	killEvery   time.Duration // dwell between kill cycles
	wipeEvery   int           // every Nth kill cycle wipes the store
	dir         string        // store root; empty uses a temp dir
	historyPath string
}

// lhService is the running service: replicas, their servers, and the
// per-site lock the killer takes to swap a site out and back in.
type lhService struct {
	cfg      longhaulConfig
	addrs    []string
	dirs     []string
	mu       sync.Mutex // guards replicas/servers during kill/heal swaps
	replicas []*relaxd.Replica
	servers  []*relaxd.SiteServer
}

// storeOptions is the long-haul durability shape: group commit does
// the fsyncs (WaitDurable per request), snapshots and small segments
// keep rotation, compaction, and shipping all firing during the soak.
func (c longhaulConfig) storeOptions() relaxd.StoreOptions {
	return relaxd.StoreOptions{SyncEvery: 1 << 20, SegmentRecords: 100}
}

func runLonghaul(w io.Writer, cfg longhaulConfig) error {
	if cfg.sites < 3 {
		return fmt.Errorf("longhaul needs at least 3 sites, have %d", cfg.sites)
	}
	if cfg.wipeEvery < 1 {
		cfg.wipeEvery = 1
	}
	dir := cfg.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "relaxsoak-longhaul-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}

	svc := &lhService{cfg: cfg}
	replicas, err := relaxd.OpenSites(dir, cfg.sites, cfg.storeOptions())
	if err != nil {
		return err
	}
	svc.replicas = replicas
	svc.dirs = make([]string, cfg.sites)
	svc.servers = make([]*relaxd.SiteServer, cfg.sites)
	svc.addrs = make([]string, cfg.sites)
	for i, r := range replicas {
		r.SnapshotEvery = 200
		svc.dirs[i] = filepath.Join(dir, fmt.Sprintf("site%d", i))
		s, err := relaxd.ListenSite("127.0.0.1:0", r)
		if err != nil {
			return err
		}
		svc.servers[i] = s
		svc.addrs[i] = s.Addr()
	}
	defer func() {
		svc.mu.Lock()
		defer svc.mu.Unlock()
		for _, s := range svc.servers {
			if s != nil {
				s.Close()
			}
		}
	}()

	lat := core.TaxiSimpleLattice()
	checker := relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})
	checker.ObserveClaim(-1, "Q1Q2")

	tr := relaxd.NewPooledTransport(svc.addrs, 2*time.Second)
	defer tr.Close()
	clients := make([]*relaxd.Client, cfg.clients)
	for i := range clients {
		ccfg := relaxd.PQClientConfig(tr)
		ccfg.Audit = checker
		clients[i] = relaxd.NewClient(ccfg, cfg.sites+1+i)
	}

	// The workload: client goroutines issue seeded ops, each whole op
	// under the global mutex (the oracle's concurrency grain). Counter
	// updates ride the same mutex.
	var (
		opMu     sync.Mutex
		issued   int
		observed history.History
		counts   = map[string]int{}
		fatal    error
		wg       sync.WaitGroup
	)
	for c := range clients {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
			cl := clients[c]
			for {
				var inv history.Invocation
				if rng.Float64() < 0.45 {
					inv = history.DeqInv()
				} else {
					inv = history.EnqInv(rng.Intn(9) + 1)
				}
				opMu.Lock()
				if fatal != nil || issued >= cfg.ops {
					opMu.Unlock()
					return
				}
				issued++
				op, err := cl.Execute(inv)
				switch {
				case err == nil:
					observed = append(observed, op)
					counts["ok"]++
				case errors.Is(err, cluster.ErrNoResponse):
					counts["no-response"]++
				case errors.Is(err, cluster.ErrUnavailable):
					counts["unavailable"]++
				case errors.Is(err, relaxd.ErrNoQuorumAck):
					counts["no-quorum-ack"]++
				default:
					fatal = fmt.Errorf("op %d (%s): %w", issued-1, inv, err)
				}
				opMu.Unlock()
			}
		}(c)
	}

	// The killer: one victim at a time is hard-killed (listener down,
	// replica crashed, no flush), dwells dead while ops continue on the
	// surviving quorum, and comes back — every wipeEvery-th cycle with
	// a destroyed store, so the only way back is snapshot shipping.
	var kills, wipes int
	killerDone := make(chan error, 1)
	stopKiller := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(cfg.seed ^ 0x6b696c6c))
		cycle := 0
		for {
			select {
			case <-stopKiller:
				killerDone <- nil
				return
			case <-time.After(cfg.killEvery):
			}
			cycle++
			victim := rng.Intn(cfg.sites)
			wipe := cycle%cfg.wipeEvery == 0
			if err := svc.killAndHeal(victim, wipe); err != nil {
				killerDone <- fmt.Errorf("kill cycle %d (site %d, wipe=%v): %w", cycle, victim, wipe, err)
				return
			}
			kills++
			if wipe {
				wipes++
			}
		}
	}()

	wg.Wait()
	close(stopKiller)
	if err := <-killerDone; err != nil {
		return err
	}
	if fatal != nil {
		return fatal
	}
	// The acceptance bar demands at least one full wipe-and-rejoin; a
	// short run that never reached a wipe cycle does one now, with the
	// service otherwise quiet.
	if wipes == 0 {
		if err := svc.killAndHeal(cfg.sites-1, true); err != nil {
			return fmt.Errorf("final wipe-and-rejoin: %w", err)
		}
		kills++
		wipes++
	}

	fmt.Fprintf(w, "longhaul sites=%d clients=%d ops=%d ok=%d no-response=%d unavailable=%d no-quorum-ack=%d\n",
		cfg.sites, cfg.clients, issued, counts["ok"], counts["no-response"], counts["unavailable"], counts["no-quorum-ack"])
	fmt.Fprintf(w, "longhaul kills=%d wipes=%d (every site recovered, wiped sites rejoined via snapshot shipping)\n",
		kills, wipes)

	if cfg.historyPath != "" {
		if err := writeFile(cfg.historyPath, func(f io.Writer) error {
			return history.WriteLines(f, observed)
		}); err != nil {
			return err
		}
	}

	// Live verdict: the checker that watched every completed op.
	if v := checker.Violation(); v != nil {
		fmt.Fprintf(w, "  FAIL: live checker: %v\n", v)
		return fmt.Errorf("lattice-level violations detected")
	}
	fmt.Fprintf(w, "longhaul live-checker level=%s audited=%d verdict=certified\n", checker.Level(), checker.Steps())

	// Final-state verdict: the merged durable logs certify at the
	// strongest rung.
	svc.mu.Lock()
	logs := make([]quorum.Log, cfg.sites)
	for i, r := range svc.replicas {
		logs[i] = r.Log()
	}
	svc.mu.Unlock()
	merged := quorum.Merge(logs...)
	if merged.Len() != counts["ok"] {
		// Lost acks can legitimately leave extra entries; missing ones
		// cannot.
		if merged.Len() < counts["ok"] {
			return fmt.Errorf("merged log holds %d entries, %d ops completed", merged.Len(), counts["ok"])
		}
		fmt.Fprintf(w, "longhaul note: %d unacked entries surfaced in the merged log\n", merged.Len()-counts["ok"])
	}
	if v := relaxcheck.Certify(lat, nil, "Q1Q2", merged.History()); v != nil {
		fmt.Fprintf(w, "  FAIL: merged log: %+v\n", v)
		return fmt.Errorf("lattice-level violations detected")
	}
	fmt.Fprintf(w, "longhaul merged-log entries=%d verdict=certified\n", merged.Len())

	// Sidecar verdict: the observed history replayed through a fresh
	// checker, the way `relaxsoak -mode audit` replays an export.
	replay := relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})
	replay.ObserveClaim(-1, "Q1Q2")
	for _, op := range observed {
		replay.ObserveOp(op)
	}
	if v := replay.Violation(); v != nil {
		fmt.Fprintf(w, "  FAIL: sidecar replay: %v\n", v)
		return fmt.Errorf("lattice-level violations detected")
	}
	fmt.Fprintf(w, "longhaul sidecar-replay audited=%d verdict=certified\n", replay.Steps())
	fmt.Fprintln(w, "longhaul survived the kill-9 soak inside its claimed lattice level")
	return nil
}

// killAndHeal hard-kills one site, dwells with it dead, and brings it
// back — after destroying its store first when wipe is set, in which
// case the only way back to serving is a certified snapshot-shipping
// join from the surviving quorum.
func (svc *lhService) killAndHeal(victim int, wipe bool) error {
	svc.mu.Lock()
	srv := svc.servers[victim]
	r := svc.replicas[victim]
	svc.servers[victim] = nil
	svc.mu.Unlock()

	srv.Kill()
	time.Sleep(svc.cfg.killEvery / 2)

	if wipe {
		if err := os.RemoveAll(svc.dirs[victim]); err != nil {
			return err
		}
	}
	if _, err := r.Restart(); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	if wipe {
		// Join strictly before listening: the installed state cannot race
		// client appends while the site is unreachable.
		jtr := relaxd.NewPooledTransport(svc.addrs, 2*time.Second)
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if _, err = r.JoinFrom(relaxd.JoinConfig{Transport: jtr, Certify: relaxd.PQCertify()}); err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		jtr.Close()
		if err != nil {
			return fmt.Errorf("join: %w", err)
		}
	}
	srv, err := relaxd.ListenSite(svc.addrs[victim], r)
	if err != nil {
		return fmt.Errorf("re-listen: %w", err)
	}
	svc.mu.Lock()
	svc.servers[victim] = srv
	svc.mu.Unlock()
	return nil
}
