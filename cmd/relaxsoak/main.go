// relaxsoak is the deterministic soak/stress harness: it drives
// hundreds of adaptive clients through tens of thousands of operations
// on simulated time — against the replicated quorum-consensus cluster
// and against the transactional print-spooler runtime — with the
// online relaxation checker (internal/relaxcheck) attached as a live
// audit. The run fails, with a nonzero exit, the moment an observed
// prefix escapes the claimed lattice level.
//
// Every run is a pure function of its flags: the report text, the
// metrics snapshot, and the event journal are byte-identical across
// repetitions and across GOMAXPROCS settings (the whole workload runs
// on a single-threaded discrete-event engine).
//
// A third mode, conc, soaks the lock-free relaxed structures of
// internal/conc: real goroutines on real shared memory, each recorded
// run certified against the structure's claimed lattice element. The
// schedule there is genuinely nondeterministic, so the verdict line is
// the deterministic artifact — it names the structure, its claim, and
// the certification outcome, never schedule-dependent counts.
//
// Usage:
//
//	relaxsoak [-mode cluster|txn|both|conc] [-workload uniform|bursty|skewed|fault-correlated|all]
//	          [-seed N] [-clients N] [-ops N] [-sites N] [-dequeuers N]
//	          [-workers N] [-sample N] [-calm] [-metrics F] [-trace F]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/conc"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/relaxcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("relaxsoak", flag.ContinueOnError)
	mode := fs.String("mode", "both", "what to soak: cluster, txn, both, or conc")
	workload := fs.String("workload", "uniform", "workload kind (uniform, bursty, skewed, fault-correlated, or all)")
	seed := fs.Int64("seed", 1987, "root seed for the deterministic run")
	clients := fs.Int("clients", 200, "concurrent clients")
	ops := fs.Int("ops", 10000, "operations per run")
	sites := fs.Int("sites", 5, "cluster sites")
	dequeuers := fs.Int("dequeuers", 3, "txn-mode concurrent dequeuer bound (spool universe size)")
	workers := fs.Int("workers", 4, "conc-mode goroutines per structure")
	sample := fs.Int("sample", 0, "record the checker verdict every N ops")
	calm := fs.Bool("calm", false, "disable the stochastic background fault process (cluster mode)")
	metricsPath := fs.String("metrics", "", "write the deterministic metrics snapshot (JSON) to this file")
	tracePath := fs.String("trace", "", "write the logical-clock event journal (JSON Lines) to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *mode == "conc" {
		if runConc(w, *workers, *ops) {
			return fmt.Errorf("lattice-level violations detected")
		}
		fmt.Fprintln(w, "all conc runs landed inside their claimed lattice levels")
		return nil
	}

	var kinds []relaxcheck.Kind
	if *workload == "all" {
		kinds = relaxcheck.Kinds()
	} else {
		k, err := relaxcheck.ParseKind(*workload)
		if err != nil {
			return err
		}
		kinds = []relaxcheck.Kind{k}
	}

	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	failed := false
	for _, kind := range kinds {
		w0 := relaxcheck.Workload{Kind: kind, Clients: *clients, Ops: *ops}
		if *mode == "cluster" || *mode == "both" {
			cfg := relaxcheck.ClusterSoakConfig{
				Workload:    w0,
				Seed:        *seed,
				Sites:       *sites,
				Metrics:     reg,
				Trace:       rec,
				SampleEvery: *sample,
			}
			if !*calm && kind != relaxcheck.FaultCorrelated {
				cfg.Faults = cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}
			}
			report, err := relaxcheck.RunClusterSoak(cfg)
			printReport(w, "cluster", kind, report)
			if err != nil {
				fmt.Fprintf(w, "  FAIL: %v\n", err)
				failed = true
			}
		}
		if *mode == "txn" || *mode == "both" {
			report, err := relaxcheck.RunTxnSoak(relaxcheck.TxnSoakConfig{
				Workload:    w0,
				Seed:        *seed,
				Dequeuers:   *dequeuers,
				Metrics:     reg,
				Trace:       rec,
				SampleEvery: *sample,
			})
			printReport(w, "txn", kind, report)
			if err != nil {
				fmt.Fprintf(w, "  FAIL: %v\n", err)
				failed = true
			}
		}
	}
	if err := writeObs(*metricsPath, *tracePath, reg, rec); err != nil {
		return err
	}
	if failed {
		return fmt.Errorf("lattice-level violations detected")
	}
	fmt.Fprintln(w, "all soak runs landed inside their claimed lattice levels")
	return nil
}

// runConc soaks every internal/conc structure with `workers`
// goroutines sharing `ops` operations, then certifies each recorded
// history at the structure's claimed rung. Output lines carry only
// schedule-independent facts so the report text stays deterministic
// even though the interleavings are not.
func runConc(w io.Writer, workers, ops int) (failed bool) {
	per := ops / workers
	if per < 1 {
		per = 1
	}
	structures := []func(j *conc.Journal) conc.RelaxedQueue{
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewStrict(j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewSegQueue(16, workers+1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewSegQueue(64, workers+1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewDupQueue(j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewShardPQ(8, 2, 1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewLanePQ(workers+1, 8, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewStrictPQ(j) },
	}
	for _, mk := range structures {
		j := conc.NewJournal(workers * per)
		q := mk(j)
		conc.RunWorkload(q, workers, per)
		verdict := "certified"
		if d := j.Dropped(); d != 0 {
			verdict = "FAIL (journal overflow)"
			failed = true
		} else if v := conc.Certify(q.Claim(), j.History(), workers).Violation(); v != nil {
			verdict = fmt.Sprintf("FAIL (%v)", v)
			failed = true
		}
		fmt.Fprintf(w, "conc     %-16s workers=%d claim=%s verdict=%s\n",
			q.Name(), workers, q.Claim().Level, verdict)
	}
	return failed
}

func printReport(w io.Writer, mode string, kind relaxcheck.Kind, r *relaxcheck.SoakReport) {
	floor := r.FloorClaim
	if floor == "" {
		floor = "(top; no degradation claimed)"
	}
	fmt.Fprintf(w, "%-8s %-16s ops=%d completed=%d failed=%d audited=%d level=%s floor=%s maxfrontier=%d\n",
		mode, kind, r.Ops, r.Completed, r.Failed, r.Steps, r.Level, floor, r.MaxFrontier)
}

func writeObs(metricsPath, tracePath string, reg *obs.Registry, rec *obs.Recorder) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
