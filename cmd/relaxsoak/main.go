// relaxsoak is the deterministic soak/stress harness: it drives
// hundreds of adaptive clients through tens of thousands of operations
// on simulated time — against the replicated quorum-consensus cluster
// and against the transactional print-spooler runtime — with the
// online relaxation checker (internal/relaxcheck) attached as a live
// audit. The run fails, with a nonzero exit, the moment an observed
// prefix escapes the claimed lattice level.
//
// Every run is a pure function of its flags: the report text, the
// metrics snapshot, and the event journal are byte-identical across
// repetitions and across GOMAXPROCS settings (the whole workload runs
// on a single-threaded discrete-event engine).
//
// A third mode, conc, soaks the lock-free relaxed structures of
// internal/conc: real goroutines on real shared memory, each recorded
// run certified against the structure's claimed lattice element. The
// schedule there is genuinely nondeterministic, so the verdict line is
// the deterministic artifact — it names the structure, its claim, and
// the certification outcome, never schedule-dependent counts.
//
// A fifth mode, longhaul, is the kill-9 soak battery: a real networked
// relaxd service (TCP listeners, durable segmented WALs, pooled
// multiplexed transport) under sustained client load while sites are
// hard-killed continuously and periodically wiped — rejoining via
// certified snapshot shipping — with the online checker auditing every
// completed operation and the final merged log certified at the
// strongest taxi rung. Unlike cluster/txn runs it is genuinely
// nondeterministic; the verdict lines are the artifact.
//
// A fourth mode, audit, is the checkpointable audit sidecar: it replays
// an exported observed history (-history, written by a cluster or txn
// run) through the online checker alone, writing a resumable checkpoint
// every -checkpoint-every operations. A run killed at any point (or cut
// short with -stop-at) resumes from its checkpoint (-resume) and, by
// the checkpoint/restore soundness property (DESIGN.md §14), reaches
// exactly the verdicts of the run that was never interrupted.
//
// Usage:
//
//	relaxsoak [-mode cluster|txn|both|conc|audit|longhaul] [-workload uniform|bursty|skewed|fault-correlated|all]
//	          [-seed N] [-clients N] [-ops N] [-sites N] [-dequeuers N]
//	          [-workers N] [-sample N] [-calm] [-metrics F] [-trace F]
//	          [-spans F] [-flight F] [-history F]
//	          [-lattice taxi|spool] [-checkpoint F] [-checkpoint-every N]
//	          [-resume F] [-stop-at N] [-window N] [-frontier-cap N]
//	          [-kill-every D] [-wipe-every N] [-dir P]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"relaxlattice/internal/cluster"
	"relaxlattice/internal/conc"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
	"relaxlattice/internal/relaxcheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxsoak:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("relaxsoak", flag.ContinueOnError)
	mode := fs.String("mode", "both", "what to soak: cluster, txn, both, or conc")
	workload := fs.String("workload", "uniform", "workload kind (uniform, bursty, skewed, fault-correlated, or all)")
	seed := fs.Int64("seed", 1987, "root seed for the deterministic run")
	clients := fs.Int("clients", 200, "concurrent clients")
	ops := fs.Int("ops", 10000, "operations per run")
	sites := fs.Int("sites", 5, "cluster sites")
	dequeuers := fs.Int("dequeuers", 3, "txn-mode concurrent dequeuer bound (spool universe size)")
	workers := fs.Int("workers", 4, "conc-mode goroutines per structure")
	sample := fs.Int("sample", 0, "record the checker verdict every N ops")
	calm := fs.Bool("calm", false, "disable the stochastic background fault process (cluster mode)")
	metricsPath := fs.String("metrics", "", "write the deterministic metrics snapshot (JSON) to this file")
	tracePath := fs.String("trace", "", "write the logical-clock event journal (JSON Lines) to this file")
	spansPath := fs.String("spans", "", "write the causal span stream (JSON Lines) to this file")
	flightPath := fs.String("flight", "", "on the first violation, dump the degradation flight recorder (JSON Lines) to this file")
	historyPath := fs.String("history", "", "cluster/txn: write the audited history to this file; audit: read it")
	auditLattice := fs.String("lattice", "taxi", "audit-mode lattice: taxi (cluster histories) or spool (txn histories)")
	checkpointPath := fs.String("checkpoint", "", "audit mode: write a resumable checker checkpoint to this file")
	checkpointEvery := fs.Int("checkpoint-every", 1000, "audit mode: checkpoint every N observed operations (plus one at exit)")
	resumePath := fs.String("resume", "", "audit mode: resume from this checkpoint instead of the empty history")
	stopAt := fs.Int("stop-at", 0, "audit mode: stop after N total operations (simulates a kill; 0 = run to the end)")
	window := fs.Int("window", 0, "audit mode: keep only the most recent N sampled verdicts")
	frontierCap := fs.Int("frontier-cap", 0, "audit mode: abandon lattice elements whose frontier exceeds N states (bounded memory; suppresses violations while any element is abandoned)")
	killEvery := fs.Duration("kill-every", 100*time.Millisecond, "longhaul mode: dwell between hard kill cycles")
	wipeEvery := fs.Int("wipe-every", 3, "longhaul mode: every Nth kill cycle wipes the victim's store (rejoin via snapshot shipping)")
	dir := fs.String("dir", "", "longhaul mode: store root directory (empty = a temp dir, removed at exit)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *mode == "longhaul" {
		return runLonghaul(w, longhaulConfig{
			sites:       *sites,
			clients:     *clients,
			ops:         *ops,
			seed:        *seed,
			killEvery:   *killEvery,
			wipeEvery:   *wipeEvery,
			dir:         *dir,
			historyPath: *historyPath,
		})
	}

	if *mode == "audit" {
		return runAudit(w, auditConfig{
			historyPath:     *historyPath,
			lattice:         *auditLattice,
			dequeuers:       *dequeuers,
			sample:          *sample,
			window:          *window,
			frontierCap:     *frontierCap,
			checkpointPath:  *checkpointPath,
			checkpointEvery: *checkpointEvery,
			resumePath:      *resumePath,
			stopAt:          *stopAt,
		})
	}

	if *mode == "conc" {
		if runConc(w, *workers, *ops) {
			return fmt.Errorf("lattice-level violations detected")
		}
		fmt.Fprintln(w, "all conc runs landed inside their claimed lattice levels")
		return nil
	}

	var kinds []relaxcheck.Kind
	if *workload == "all" {
		kinds = relaxcheck.Kinds()
	} else {
		k, err := relaxcheck.ParseKind(*workload)
		if err != nil {
			return err
		}
		kinds = []relaxcheck.Kind{k}
	}

	reg := obs.NewRegistry()
	rec := obs.NewRecorder()
	var spans *trace.Tracer
	if *spansPath != "" {
		spans = trace.NewTracer("soak", nil)
	}
	var flight *trace.FlightRecorder
	flightDumped := false
	onViolation := func(v relaxcheck.Violation) {
		if flightDumped {
			return
		}
		flightDumped = true
		if err := dumpFlight(*flightPath, flight, v); err != nil {
			fmt.Fprintln(os.Stderr, "relaxsoak: flight dump:", err)
		}
	}
	if *flightPath != "" {
		flight = trace.NewFlightRecorder(512, 512)
		spans.SetMirror(flight)
		rec.SetObserver(flight.ObserveEvent)
	} else {
		onViolation = nil
	}
	var audited history.History

	failed := false
	for _, kind := range kinds {
		w0 := relaxcheck.Workload{Kind: kind, Clients: *clients, Ops: *ops}
		if *mode == "cluster" || *mode == "both" {
			cfg := relaxcheck.ClusterSoakConfig{
				Workload:    w0,
				Seed:        *seed,
				Sites:       *sites,
				Metrics:     reg,
				Trace:       rec,
				SampleEvery: *sample,
				Spans:       spans,
				OnViolation: onViolation,
			}
			if !*calm && kind != relaxcheck.FaultCorrelated {
				cfg.Faults = cluster.FaultConfig{MTTF: 60, MTTR: 8, MTBP: 150, PartitionDwell: 12}
			}
			report, err := relaxcheck.RunClusterSoak(cfg)
			printReport(w, "cluster", kind, report)
			audited = append(audited, report.Observed...)
			if err != nil {
				fmt.Fprintf(w, "  FAIL: %v\n", err)
				failed = true
			}
		}
		if *mode == "txn" || *mode == "both" {
			report, err := relaxcheck.RunTxnSoak(relaxcheck.TxnSoakConfig{
				Workload:    w0,
				Seed:        *seed,
				Dequeuers:   *dequeuers,
				Metrics:     reg,
				Trace:       rec,
				SampleEvery: *sample,
				Spans:       spans,
				OnViolation: onViolation,
			})
			printReport(w, "txn", kind, report)
			audited = append(audited, report.Observed...)
			if err != nil {
				fmt.Fprintf(w, "  FAIL: %v\n", err)
				failed = true
			}
		}
	}
	if err := writeObs(*metricsPath, *tracePath, reg, rec); err != nil {
		return err
	}
	if *spansPath != "" {
		if err := writeFile(*spansPath, spans.WriteJSONL); err != nil {
			return err
		}
	}
	if *historyPath != "" {
		if err := writeFile(*historyPath, func(f io.Writer) error {
			return history.WriteLines(f, audited)
		}); err != nil {
			return err
		}
	}
	if failed {
		return fmt.Errorf("lattice-level violations detected")
	}
	fmt.Fprintln(w, "all soak runs landed inside their claimed lattice levels")
	return nil
}

// runConc soaks every internal/conc structure with `workers`
// goroutines sharing `ops` operations, then certifies each recorded
// history at the structure's claimed rung. Output lines carry only
// schedule-independent facts so the report text stays deterministic
// even though the interleavings are not.
func runConc(w io.Writer, workers, ops int) (failed bool) {
	per := ops / workers
	if per < 1 {
		per = 1
	}
	structures := []func(j *conc.Journal) conc.RelaxedQueue{
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewStrict(j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewSegQueue(16, workers+1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewSegQueue(64, workers+1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewDupQueue(j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewShardPQ(8, 2, 1, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewLanePQ(workers+1, 8, j) },
		func(j *conc.Journal) conc.RelaxedQueue { return conc.NewStrictPQ(j) },
	}
	for _, mk := range structures {
		j := conc.NewJournal(workers * per)
		q := mk(j)
		conc.RunWorkload(q, workers, per)
		verdict := "certified"
		if d := j.Dropped(); d != 0 {
			verdict = "FAIL (journal overflow)"
			failed = true
		} else if v := conc.Certify(q.Claim(), j.History(), workers).Violation(); v != nil {
			verdict = fmt.Sprintf("FAIL (%v)", v)
			failed = true
		}
		fmt.Fprintf(w, "conc     %-16s workers=%d claim=%s verdict=%s\n",
			q.Name(), workers, q.Claim().Level, verdict)
	}
	return failed
}

func printReport(w io.Writer, mode string, kind relaxcheck.Kind, r *relaxcheck.SoakReport) {
	floor := r.FloorClaim
	if floor == "" {
		floor = "(top; no degradation claimed)"
	}
	fmt.Fprintf(w, "%-8s %-16s ops=%d completed=%d failed=%d audited=%d level=%s floor=%s maxfrontier=%d\n",
		mode, kind, r.Ops, r.Completed, r.Failed, r.Steps, r.Level, floor, r.MaxFrontier)
}

// auditConfig gathers the audit-sidecar flags.
type auditConfig struct {
	historyPath     string
	lattice         string
	dequeuers       int
	sample          int
	window          int
	frontierCap     int
	checkpointPath  string
	checkpointEvery int
	resumePath      string
	stopAt          int
}

// runAudit replays an exported observed history through the online
// checker alone — the audit sidecar. Checkpoints are written every
// checkpointEvery operations plus once at exit, so killing the process
// anywhere loses at most checkpointEvery operations of progress and
// never any soundness: resuming from the latest checkpoint reproduces
// the uninterrupted run's verdicts exactly.
func runAudit(w io.Writer, cfg auditConfig) error {
	if cfg.historyPath == "" {
		return fmt.Errorf("-mode audit requires -history (an exported observed history)")
	}
	hf, err := os.Open(cfg.historyPath)
	if err != nil {
		return err
	}
	h, err := history.ReadLines(hf)
	hf.Close()
	if err != nil {
		return err
	}

	var lat *lattice.Relaxation
	switch cfg.lattice {
	case "taxi":
		lat = core.TaxiSimpleLattice()
	case "spool":
		lat = core.SemiqueueLattice(cfg.dequeuers)
	default:
		return fmt.Errorf("unknown audit lattice %q (want taxi or spool)", cfg.lattice)
	}
	opts := relaxcheck.Options{
		SampleEvery: cfg.sample,
		Window:      cfg.window,
		FrontierCap: cfg.frontierCap,
	}

	checker := relaxcheck.New(lat, opts)
	start := 0
	if cfg.resumePath != "" {
		rf, err := os.Open(cfg.resumePath)
		if err != nil {
			return err
		}
		checker, err = relaxcheck.Resume(lat, opts, rf)
		rf.Close()
		if err != nil {
			return err
		}
		start = checker.Steps()
		if start > len(h) {
			return fmt.Errorf("checkpoint is %d operations ahead of the %d-operation history", start, len(h))
		}
	}
	stop := len(h)
	if cfg.stopAt > 0 && cfg.stopAt < stop {
		stop = cfg.stopAt
	}

	writeCheckpoint := func() error {
		if cfg.checkpointPath == "" {
			return nil
		}
		return writeFile(cfg.checkpointPath, checker.Checkpoint)
	}
	for i := start; i < stop; i++ {
		checker.ObserveOp(h[i])
		if cfg.checkpointEvery > 0 && (i+1-start)%cfg.checkpointEvery == 0 {
			if err := writeCheckpoint(); err != nil {
				return err
			}
		}
	}
	if err := writeCheckpoint(); err != nil {
		return err
	}

	fmt.Fprintf(w, "audit    %-16s ops=%d from=%d to=%d level=%s abandoned=%d maxfrontier=%d\n",
		cfg.lattice, len(h), start, stop, checker.Level(), checker.Abandoned(), checker.MaxFrontier())
	if v := checker.Violation(); v != nil {
		fmt.Fprintf(w, "  FAIL: %v\n", v)
		return fmt.Errorf("lattice-level violations detected")
	}
	if stop < len(h) {
		fmt.Fprintf(w, "audit stopped at %d of %d operations (resumable from the checkpoint)\n", stop, len(h))
		return nil
	}
	fmt.Fprintln(w, "audited history stays inside its relaxation lattice")
	return nil
}

// dumpFlight writes the flight-recorder artifact for a violation.
func dumpFlight(path string, fr *trace.FlightRecorder, v relaxcheck.Violation) error {
	if path == "" || fr == nil {
		return nil
	}
	return writeFile(path, func(f io.Writer) error {
		return fr.WriteDump(f,
			obs.KV{K: "kind", V: v.Kind},
			obs.KV{K: "step", V: fmt.Sprint(v.Step)},
			obs.KV{K: "op", V: v.Op.String()},
			obs.KV{K: "claim", V: v.Claim})
	})
}

// writeFile creates path and writes through fn, closing cleanly.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeObs(metricsPath, tracePath string, reg *obs.Registry, rec *obs.Recorder) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
