// spoolsim simulates the transactional print spooler of Section 4.2
// with concurrent printer-controller goroutines, one strategy per run,
// then verifies the executed schedule against the relaxation lattice's
// prediction: blocking → Atomic(FIFO), optimistic →
// Atomic(Semiqueue_k), pessimistic → Atomic(Stuttering_j), with k/j the
// observed number of concurrent dequeuers.
//
// Usage:
//
//	spoolsim [-strategy blocking|optimistic|pessimistic] [-printers N] [-jobs N] [-seed N]
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"
	"time"

	"relaxlattice/internal/history"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

func main() {
	strategyName := flag.String("strategy", "optimistic", "blocking, optimistic, or pessimistic")
	printers := flag.Int("printers", 3, "concurrent printer controllers")
	jobs := flag.Int("jobs", 12, "spooled jobs")
	seed := flag.Int64("seed", 1987, "random seed (abort decisions)")
	pAbort := flag.Float64("pabort", 0.1, "probability a printer transaction aborts (paper jam)")
	hold := flag.Duration("hold", 2*time.Millisecond, "printing time between dequeue and commit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar txn metrics on this address")
	flag.Parse()

	strategy, ok := map[string]txn.Strategy{
		"blocking":    txn.Blocking,
		"optimistic":  txn.Optimistic,
		"pessimistic": txn.Pessimistic,
	}[*strategyName]
	if !ok {
		fmt.Fprintf(os.Stderr, "spoolsim: unknown strategy %q\n", *strategyName)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr, reg); err != nil {
			fmt.Fprintln(os.Stderr, "spoolsim:", err)
			os.Exit(1)
		}
	}
	if err := run(os.Stdout, reg, strategy, *printers, *jobs, *seed, *pAbort, *hold); err != nil {
		fmt.Fprintln(os.Stderr, "spoolsim:", err)
		os.Exit(1)
	}
}

// startPprof serves net/http/pprof and expvar on addr, publishing the
// simulation's txn metrics live at /debug/vars under "spoolsim".
func startPprof(addr string, reg *obs.Registry) error {
	expvar.Publish("spoolsim", expvar.Func(func() any { return reg.Snapshot() }))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pprof and expvar on http://%s/debug/pprof (txn metrics at /debug/vars)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "spoolsim: pprof server:", err)
		}
	}()
	return nil
}

func run(w io.Writer, reg *obs.Registry, strategy txn.Strategy, printers, jobs int, seed int64, pAbort float64, hold time.Duration) error {
	fmt.Fprintf(w, "print spooler: strategy=%s printers=%d jobs=%d\n", strategy, printers, jobs)
	cq := txn.NewConcurrentQueue(strategy)
	cq.Observe(reg, nil)

	// Clients spool jobs, each in its own transaction.
	for j := 1; j <= jobs; j++ {
		t := cq.Begin()
		if err := cq.Enq(t, value.Elem(j)); err != nil {
			return err
		}
		if err := cq.Commit(t); err != nil {
			return err
		}
	}

	// Printer controllers dequeue-print-commit concurrently; paper jams
	// abort the transaction, and the job is retried by someone else.
	var mu sync.Mutex
	printed := map[value.Elem]int{}
	remaining := jobs
	var wg sync.WaitGroup
	for p := 0; p < printers; p++ {
		g := sim.NewRNG(seed + int64(p))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if remaining <= 0 {
					mu.Unlock()
					return
				}
				mu.Unlock()
				t := cq.Begin()
				e, err := cq.Deq(t)
				if err != nil {
					if abortErr := cq.AbortTxn(t); abortErr != nil {
						panic(abortErr) // t was just begun; abort cannot fail
					}
					mu.Lock()
					done := remaining <= 0
					mu.Unlock()
					if done {
						return
					}
					// The queue looked empty (items held by concurrent
					// transactions); back off instead of spinning.
					time.Sleep(hold / 4)
					continue
				}
				time.Sleep(hold) // printing
				if g.Bool(pAbort) {
					if abortErr := cq.AbortTxn(t); abortErr != nil {
						panic(abortErr) // paper jam abort of a live txn cannot fail
					}
					continue
				}
				if err := cq.Commit(t); err != nil {
					return
				}
				mu.Lock()
				printed[e]++
				remaining--
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	schedule, k := cq.Snapshot()
	fmt.Fprintf(w, "\nexecuted %d schedule steps; max concurrent dequeuers k=%d\n", len(schedule), k)
	duplicates, outOfOrder := summarize(printed, schedule)
	fmt.Fprintf(w, "jobs printed more than once: %d; printed out of spool order: %d\n", duplicates, outOfOrder)

	fmt.Fprintln(w, "\nlattice verification (hybrid atomicity in commit order):")
	report := func(name string, ok bool) { fmt.Fprintf(w, "  schedule ∈ L(Atomic(%s)): %v\n", name, ok) }
	report("FifoQueue", txn.HybridAtomic(schedule, specs.FIFOQueue()))
	if k >= 1 {
		report(fmt.Sprintf("Semiqueue_%d", k), txn.HybridAtomic(schedule, specs.Semiqueue(k)))
		report(fmt.Sprintf("Stuttering_%d", k), txn.HybridAtomic(schedule, specs.StutteringQueue(k)))
		report(fmt.Sprintf("SSqueue_%d_%d", k, k), txn.HybridAtomic(schedule, specs.SSQueue(k, k)))
	}
	want := map[txn.Strategy]string{
		txn.Blocking:    "blocking keeps FIFO at any concurrency",
		txn.Optimistic:  fmt.Sprintf("optimistic lands on Semiqueue_%d", k),
		txn.Pessimistic: fmt.Sprintf("pessimistic lands on Stuttering_%d", k),
	}
	fmt.Fprintln(w, "\nprediction:", want[strategy])

	fmt.Fprintln(w, "\ntxn runtime counters:")
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "  %-28s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		fmt.Fprintf(w, "  %-28s %d\n", g.Name, g.Value)
	}
	return nil
}

func summarize(printed map[value.Elem]int, schedule txn.Schedule) (duplicates, outOfOrder int) {
	for _, n := range printed {
		if n > 1 {
			duplicates += n - 1
		}
	}
	// Out-of-order: committed Deq responses compared to spool order.
	var seq []int
	for _, st := range schedule.Perm() {
		if st.Op.Name == history.NameDeq && len(st.Op.Res) == 1 {
			seq = append(seq, st.Op.Res[0])
		}
	}
	maxSeen := 0
	for _, e := range seq {
		if e < maxSeen {
			outOfOrder++
		}
		if e > maxSeen {
			maxSeen = e
		}
	}
	return duplicates, outOfOrder
}
