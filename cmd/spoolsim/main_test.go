package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/txn"
)

func TestSpoolsimStrategies(t *testing.T) {
	for _, strategy := range []txn.Strategy{txn.Blocking, txn.Optimistic, txn.Pessimistic} {
		var buf bytes.Buffer
		if err := run(&buf, obs.NewRegistry(), strategy, 3, 9, 1987, 0.1, time.Millisecond); err != nil {
			t.Fatalf("%v: %v", strategy, err)
		}
		out := buf.String()
		if !strings.Contains(out, "lattice verification") {
			t.Errorf("%v output missing verification:\n%s", strategy, out)
		}
		// Every run lands inside the combined SSqueue bound.
		if !strings.Contains(out, "SSqueue_") {
			t.Errorf("%v missing SSqueue line", strategy)
		}
		if strings.Contains(out, "SSqueue_") && strings.Contains(out, "): false") {
			// The SSqueue_kk line specifically must be true; find it.
			for _, line := range strings.Split(out, "\n") {
				if strings.Contains(line, "SSqueue_") && strings.Contains(line, "false") {
					t.Errorf("%v left the SSqueue bound: %s", strategy, line)
				}
			}
		}
	}
}

func TestSpoolsimBlockingIsFIFO(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, obs.NewRegistry(), txn.Blocking, 4, 12, 3, 0.0, time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Atomic(FifoQueue)): true") {
		t.Errorf("blocking should be FIFO:\n%s", out)
	}
	if !strings.Contains(out, "jobs printed more than once: 0") {
		t.Errorf("blocking duplicated jobs:\n%s", out)
	}
	if !strings.Contains(out, "printed out of spool order: 0") {
		t.Errorf("blocking reordered jobs:\n%s", out)
	}
}
