package main

import (
	"bufio"
	"strings"
	"testing"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

const sweepOutput = `goos: linux
goarch: amd64
pkg: relaxlattice/internal/conc
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkConc/q=strict/w=1         	21391651	        16.66 ns/op	  60013144 ops/sec
BenchmarkConc/q=seg-k16/w=1        	43045084	         8.588 ns/op	 116448221 ops/sec
BenchmarkConc/q=strict/w=4-4       	20000000	        20.00 ns/op	  50000000 ops/sec
BenchmarkConc/q=seg-k16/w=4-4      	40000000	         5.000 ns/op	 200000000 ops/sec
BenchmarkConc/q=strictpq/w=1       	15564118	        21.30 ns/op	  46959283 ops/sec
BenchmarkConc/q=lanepq-b8/w=1      	34291298	        11.52 ns/op	  86788033 ops/sec
BenchmarkConcPQDeep/q=strictpq/w=8 	 4000000	        80.00 ns/op	  12500000 ops/sec
BenchmarkConcPQDeep/q=lanepq-b8/w=8	30000000	        16.00 ns/op	  62500000 ops/sec
Benchmark_E10_BankAccount-4        	       2	505000000 ns/op	201000000 B/op	  1200000 allocs/op
PASS
`

func parseSweep(t *testing.T) *Snapshot {
	t.Helper()
	snap, err := parse(bufio.NewScanner(strings.NewReader(sweepOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestParseOpsPerSec(t *testing.T) {
	snap := parseSweep(t)
	if len(snap.Benchmarks) != 9 {
		t.Fatalf("parsed %d benchmarks, want 9", len(snap.Benchmarks))
	}
	r := snap.Benchmarks[0]
	if r.Name != "BenchmarkConc/q=strict/w=1" || r.OpsPerSec != 60013144 {
		t.Fatalf("first result = %+v, want strict/w=1 at 60013144 ops/sec", r)
	}
	e10 := snap.Benchmarks[8]
	if e10.OpsPerSec != 0 || e10.BytesPerOp != 201000000 || e10.AllocsPerOp != 1200000 {
		t.Fatalf("E10 result = %+v, want no ops/sec and the -benchmem pair", e10)
	}
}

func TestConcCurves(t *testing.T) {
	snap := parseSweep(t)
	curves := map[string]ConcCurve{}
	for _, c := range snap.Conc {
		curves[c.Family+"/"+c.Queue] = c
	}
	if len(curves) != 6 {
		t.Fatalf("built %d curves, want 6: %v", len(curves), snap.Conc)
	}

	seg := curves["BenchmarkConc/seg-k16"]
	if seg.Baseline != "strict" || len(seg.Points) != 2 {
		t.Fatalf("seg-k16 curve = %+v, want strict baseline with 2 points", seg)
	}
	// The w=4 point carries the GOMAXPROCS suffix in the raw name;
	// grouping must strip it and still match the baseline point.
	if p := seg.Points[1]; p.Workers != 4 || p.Speedup != 4.0 {
		t.Fatalf("seg-k16 w=4 point = %+v, want workers=4 speedup=4", p)
	}

	// Priority queues baseline against strictpq, across families.
	lp := curves["BenchmarkConcPQDeep/lanepq-b8"]
	if lp.Baseline != "strictpq" || len(lp.Points) != 1 || lp.Points[0].Speedup != 5.0 {
		t.Fatalf("deep lanepq curve = %+v, want strictpq baseline speedup 5", lp)
	}

	// Baselines carry no speedup of their own.
	if s := curves["BenchmarkConc/strict"]; s.Baseline != "" || s.Points[0].Speedup != 0 {
		t.Fatalf("strict baseline curve = %+v, want no baseline/speedup", s)
	}
}

func TestDiffGatesOnAllocationProfile(t *testing.T) {
	prev := &Snapshot{Benchmarks: []Result{
		{Name: "Benchmark_E10_BankAccount-4", NsPerOp: 900000000, BytesPerOp: 422000000, AllocsPerOp: 2000000},
		{Name: "BenchmarkStable-4", NsPerOp: 100, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkGone-4", NsPerOp: 50},
	}}
	cur := &Snapshot{Benchmarks: []Result{
		{Name: "Benchmark_E10_BankAccount-4", NsPerOp: 505000000, BytesPerOp: 201000000, AllocsPerOp: 1200000},
		// Same allocation profile, different ns/op: too noisy to list.
		{Name: "BenchmarkStable-4", NsPerOp: 120, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkNew-4", NsPerOp: 10},
	}}
	deltas := diff(prev, cur)
	if len(deltas) != 1 {
		t.Fatalf("diff listed %d deltas, want 1: %+v", len(deltas), deltas)
	}
	d := deltas[0]
	if d.Name != "Benchmark_E10_BankAccount-4" ||
		d.BytesPerOpBefore != 422000000 || d.BytesPerOpAfter != 201000000 ||
		d.AllocsPerOpBefore != 2000000 || d.AllocsPerOpAfter != 1200000 {
		t.Fatalf("delta = %+v, want the E10 allocation cut", d)
	}
}

// TestTraceSummary digests a small span stream the way -trace does:
// round-trip through the JSONL codec, analyze, summarize.
func TestTraceSummary(t *testing.T) {
	tr := trace.NewTracer("bench", nil)
	root := tr.Begin("op", obs.KV{K: "rung", V: "Q1Q2"})
	s1 := root.Child("step1")
	s1.End()
	s2 := root.Child("step2")
	s2.Link(s1.ID())
	s2.End()
	root.End()
	var buf strings.Builder
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := trace.ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	sum := summarizeTrace(trace.Analyze(spans))
	if sum.Spans != 3 || sum.Roots != 1 || sum.Links != 1 {
		t.Fatalf("summary = %+v, want 3 spans / 1 root / 1 link", sum)
	}
	if sum.CriticalTime <= 0 {
		t.Fatalf("critical time = %d, want positive", sum.CriticalTime)
	}
	found := false
	for _, r := range sum.ByRung {
		if r.Rung == "Q1Q2" && r.Spans == 3 && r.Critical > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("by_rung missing Q1Q2 attribution: %+v", sum.ByRung)
	}
}
