// benchjson converts `go test -bench` output on stdin into a JSON
// snapshot: one record per benchmark with iterations, ns/op, the
// ops/sec metric when a benchmark reports one, and (when -benchmem is
// on) B/op and allocs/op. It exists so benchmark numbers can be
// committed and diffed across PRs (see `make bench-json`).
//
// Benchmarks named BenchmarkConc*/q=<queue>/w=<workers> (the
// internal/conc throughput sweep) are additionally grouped under
// "conc" into per-queue scalability curves — workers on the x axis,
// aggregate ops/sec on the y — with each relaxed structure's speedup
// over its strict baseline (strict for queues, strictpq for priority
// queues) computed point-by-point.
//
// With -prev FILE (an earlier snapshot from this tool), benchmarks
// whose deterministic allocation profile moved are listed under
// "deltas" with before/after values, so an optimisation PR carries its
// own evidence.
//
// With -metrics FILE (an obs snapshot written by `relaxctl run
// -metrics`), the snapshot is embedded under "obs" along with a small
// derived "obs_summary" (engine dedup rate, peak frontier) so a bench
// diff shows *why* numbers moved, not just that they did.
//
// With -trace FILE (a causal span stream exported by `relaxsoak
// -spans`), the stream's critical-path analysis is digested under
// "trace_summary": span volume, happens-before links, and each
// degradation rung's share of the logical-time critical path — the
// per-rung cost attribution of the traced protocol. All of these
// fields are omitempty, so output without the flags is
// schema-identical to earlier PRs' snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"relaxlattice/internal/obs"
	"relaxlattice/internal/obs/trace"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec,omitempty"`
	// AppendsPerSec is the durable-append throughput a WAL benchmark
	// reports (b.ReportMetric(..., "appends/sec")) — the number the
	// pipelined-vs-single-commit comparison is made on.
	AppendsPerSec float64 `json:"appends_per_sec,omitempty"`
	// RecoveryMs is the cold-recovery wall clock a restart benchmark
	// reports (b.ReportMetric(..., "recovery-ms")).
	RecoveryMs  float64 `json:"recovery_ms,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full converted run.
type Snapshot struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []Result      `json:"benchmarks"`
	Conc       []ConcCurve   `json:"conc,omitempty"`
	Deltas     []Delta       `json:"deltas,omitempty"`
	Obs        *obs.Snapshot `json:"obs,omitempty"`
	ObsSummary *ObsSummary   `json:"obs_summary,omitempty"`
	Trace      *TraceSummary `json:"trace_summary,omitempty"`
}

// ConcCurve is one structure's scalability curve from a
// BenchmarkConc* sweep: aggregate throughput per worker count, with
// the speedup over the strict baseline at each point. Baselines carry
// no baseline/speedup fields of their own.
type ConcCurve struct {
	Family   string      `json:"family"`
	Queue    string      `json:"queue"`
	Baseline string      `json:"baseline,omitempty"`
	Points   []ConcPoint `json:"points"`
}

// ConcPoint is one (workers, throughput) sample of a curve.
type ConcPoint struct {
	Workers   int     `json:"workers"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_baseline,omitempty"`
}

// Delta is one benchmark whose allocation profile changed against the
// -prev snapshot. Only the deterministic memory metrics gate inclusion
// — ns/op is carried along as context but is too noisy to diff on.
type Delta struct {
	Name              string  `json:"name"`
	NsPerOpBefore     float64 `json:"ns_per_op_before"`
	NsPerOpAfter      float64 `json:"ns_per_op_after"`
	BytesPerOpBefore  int64   `json:"bytes_per_op_before"`
	BytesPerOpAfter   int64   `json:"bytes_per_op_after"`
	AllocsPerOpBefore int64   `json:"allocs_per_op_before"`
	AllocsPerOpAfter  int64   `json:"allocs_per_op_after"`
}

// ObsSummary is the digest of an embedded metrics snapshot: the
// engine-health numbers a bench reviewer actually reads.
type ObsSummary struct {
	// EngineDedupRate is dedup_hits/updates across all expansions — the
	// fraction of generated children merged into an existing state-set
	// class. Higher is better: it is where the memoized powerset engine
	// beats per-history search.
	EngineDedupRate float64 `json:"engine_dedup_rate"`
	// FrontierPeakClasses is the largest per-depth class frontier seen.
	FrontierPeakClasses int64 `json:"frontier_peak_classes"`
	// ExpandDepths is the total number of depth expansions performed.
	ExpandDepths uint64 `json:"expand_depths"`
}

// TraceSummary is the digest of an embedded causal span stream (a
// `relaxsoak -spans` export, analyzed the way cmd/relaxtrace does):
// span volume and where the logical-time critical path went, per
// degradation rung. A bench diff then shows how the traced protocol's
// step mix moved, not just its allocation profile.
type TraceSummary struct {
	Spans        int         `json:"spans"`
	Roots        int         `json:"roots"`
	Links        int         `json:"links"`
	CriticalTime int64       `json:"critical_time"`
	ByRung       []RungShare `json:"by_rung,omitempty"`
}

// RungShare is one degradation rung's share of the critical path.
type RungShare struct {
	Rung     string `json:"rung"`
	Spans    int    `json:"spans"`
	Critical int64  `json:"critical"`
}

// summarizeTrace digests a critical-path analysis for embedding.
func summarizeTrace(an trace.Analysis) *TraceSummary {
	sum := &TraceSummary{
		Spans:        an.Spans,
		Roots:        an.Roots,
		Links:        an.Links,
		CriticalTime: an.Critical,
	}
	for _, r := range an.ByRung {
		sum.ByRung = append(sum.ByRung, RungShare{Rung: r.Rung, Spans: r.Count, Critical: r.Critical})
	}
	return sum
}

// summarize derives the reviewer digest from a metrics snapshot.
func summarize(s *obs.Snapshot) *ObsSummary {
	sum := &ObsSummary{}
	updates, _ := s.Counter("engine.expand.updates")
	dedup, _ := s.Counter("engine.expand.dedup_hits")
	if updates > 0 {
		sum.EngineDedupRate = float64(dedup) / float64(updates)
	}
	sum.FrontierPeakClasses, _ = s.Gauge("engine.frontier.peak_classes")
	sum.ExpandDepths, _ = s.Counter("engine.expand.depths")
	return sum
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	metrics := flag.String("metrics", "", "obs snapshot JSON (from relaxctl run -metrics) to embed")
	prev := flag.String("prev", "", "earlier benchjson snapshot to diff allocation profiles against")
	tracePath := flag.String("trace", "", "causal span stream JSONL (from relaxsoak -spans) to summarize")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *prev != "" {
		data, err := os.ReadFile(*prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var p Snapshot
		if err := json.Unmarshal(data, &p); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *prev, err)
			os.Exit(1)
		}
		snap.Deltas = diff(&p, snap)
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		spans, err := trace.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		snap.Trace = summarizeTrace(trace.Analyze(spans))
	}
	if *metrics != "" {
		data, err := os.ReadFile(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var o obs.Snapshot
		if err := json.Unmarshal(data, &o); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *metrics, err)
			os.Exit(1)
		}
		snap.Obs = &o
		snap.ObsSummary = summarize(&o)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				snap.Benchmarks = append(snap.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	snap.Conc = concCurves(snap.Benchmarks)
	return snap, nil
}

// concCurves groups conc-sweep benchmark results into per-queue
// scalability curves and computes each relaxed structure's speedup
// over its strict baseline at matching worker counts.
func concCurves(results []Result) []ConcCurve {
	var curves []ConcCurve
	idx := map[string]int{} // family+"/"+queue → curves index
	for _, r := range results {
		family, queue, w, ok := concName(r.Name)
		if !ok || r.OpsPerSec == 0 {
			continue
		}
		key := family + "/" + queue
		i, seen := idx[key]
		if !seen {
			i = len(curves)
			idx[key] = i
			curves = append(curves, ConcCurve{Family: family, Queue: queue})
		}
		curves[i].Points = append(curves[i].Points, ConcPoint{Workers: w, OpsPerSec: r.OpsPerSec})
	}
	for i := range curves {
		base := "strict"
		if strings.Contains(curves[i].Queue, "pq") {
			base = "strictpq"
		}
		if curves[i].Queue == base {
			continue
		}
		bi, ok := idx[curves[i].Family+"/"+base]
		if !ok {
			continue
		}
		curves[i].Baseline = base
		for p := range curves[i].Points {
			for _, bp := range curves[bi].Points {
				if bp.Workers == curves[i].Points[p].Workers && bp.OpsPerSec > 0 {
					curves[i].Points[p].Speedup = curves[i].Points[p].OpsPerSec / bp.OpsPerSec
					break
				}
			}
		}
	}
	return curves
}

// concName parses BenchmarkConc*/q=<queue>/w=<workers>[-P] names.
func concName(name string) (family, queue string, workers int, ok bool) {
	parts := strings.Split(name, "/")
	if len(parts) != 3 || !strings.HasPrefix(parts[0], "BenchmarkConc") ||
		!strings.HasPrefix(parts[1], "q=") || !strings.HasPrefix(parts[2], "w=") {
		return "", "", 0, false
	}
	ws := strings.TrimPrefix(parts[2], "w=")
	if i := strings.IndexByte(ws, '-'); i >= 0 { // -P GOMAXPROCS suffix
		ws = ws[:i]
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 1 {
		return "", "", 0, false
	}
	return parts[0], strings.TrimPrefix(parts[1], "q="), w, true
}

// diff lists benchmarks present in both snapshots whose deterministic
// allocation profile (B/op or allocs/op) moved.
func diff(prev, cur *Snapshot) []Delta {
	old := map[string]Result{}
	for _, r := range prev.Benchmarks {
		old[r.Name] = r
	}
	var deltas []Delta
	for _, r := range cur.Benchmarks {
		p, ok := old[r.Name]
		if !ok || (p.BytesPerOp == r.BytesPerOp && p.AllocsPerOp == r.AllocsPerOp) {
			continue
		}
		deltas = append(deltas, Delta{
			Name:              r.Name,
			NsPerOpBefore:     p.NsPerOp,
			NsPerOpAfter:      r.NsPerOp,
			BytesPerOpBefore:  p.BytesPerOp,
			BytesPerOpAfter:   r.BytesPerOp,
			AllocsPerOpBefore: p.AllocsPerOp,
			AllocsPerOpAfter:  r.AllocsPerOp,
		})
	}
	return deltas
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkFoo-8  1000  1234 ns/op  56 B/op  7 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		switch f[i+1] {
		case "B/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				r.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(f[i], 10, 64); err == nil {
				r.AllocsPerOp = v
			}
		case "ops/sec":
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				r.OpsPerSec = v
			}
		case "appends/sec":
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				r.AppendsPerSec = v
			}
		case "recovery-ms":
			if v, err := strconv.ParseFloat(f[i], 64); err == nil {
				r.RecoveryMs = v
			}
		}
	}
	return r, true
}
