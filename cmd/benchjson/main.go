// benchjson converts `go test -bench` output on stdin into a JSON
// snapshot: one record per benchmark with iterations, ns/op, and (when
// -benchmem is on) B/op and allocs/op. It exists so benchmark numbers
// can be committed and diffed across PRs (see `make bench-json`).
//
// With -metrics FILE (an obs snapshot written by `relaxctl run
// -metrics`), the snapshot is embedded under "obs" along with a small
// derived "obs_summary" (engine dedup rate, peak frontier) so a bench
// diff shows *why* numbers moved, not just that they did. Both fields
// are omitempty, so output without -metrics is schema-identical to
// earlier PRs' snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"relaxlattice/internal/obs"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full converted run.
type Snapshot struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []Result      `json:"benchmarks"`
	Obs        *obs.Snapshot `json:"obs,omitempty"`
	ObsSummary *ObsSummary   `json:"obs_summary,omitempty"`
}

// ObsSummary is the digest of an embedded metrics snapshot: the
// engine-health numbers a bench reviewer actually reads.
type ObsSummary struct {
	// EngineDedupRate is dedup_hits/updates across all expansions — the
	// fraction of generated children merged into an existing state-set
	// class. Higher is better: it is where the memoized powerset engine
	// beats per-history search.
	EngineDedupRate float64 `json:"engine_dedup_rate"`
	// FrontierPeakClasses is the largest per-depth class frontier seen.
	FrontierPeakClasses int64 `json:"frontier_peak_classes"`
	// ExpandDepths is the total number of depth expansions performed.
	ExpandDepths uint64 `json:"expand_depths"`
}

// summarize derives the reviewer digest from a metrics snapshot.
func summarize(s *obs.Snapshot) *ObsSummary {
	sum := &ObsSummary{}
	updates, _ := s.Counter("engine.expand.updates")
	dedup, _ := s.Counter("engine.expand.dedup_hits")
	if updates > 0 {
		sum.EngineDedupRate = float64(dedup) / float64(updates)
	}
	sum.FrontierPeakClasses, _ = s.Gauge("engine.frontier.peak_classes")
	sum.ExpandDepths, _ = s.Counter("engine.expand.depths")
	return sum
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	metrics := flag.String("metrics", "", "obs snapshot JSON (from relaxctl run -metrics) to embed")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *metrics != "" {
		data, err := os.ReadFile(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var o obs.Snapshot
		if err := json.Unmarshal(data, &o); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", *metrics, err)
			os.Exit(1)
		}
		snap.Obs = &o
		snap.ObsSummary = summarize(&o)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				snap.Benchmarks = append(snap.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkFoo-8  1000  1234 ns/op  56 B/op  7 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
