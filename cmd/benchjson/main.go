// benchjson converts `go test -bench` output on stdin into a JSON
// snapshot: one record per benchmark with iterations, ns/op, and (when
// -benchmem is on) B/op and allocs/op. It exists so benchmark numbers
// can be committed and diffed across PRs (see `make bench-json`).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full converted run.
type Snapshot struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Snapshot, error) {
	snap := &Snapshot{Benchmarks: []Result{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			snap.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseBench(line)
			if ok {
				snap.Benchmarks = append(snap.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkFoo-8  1000  1234 ns/op  56 B/op  7 allocs/op
func parseBench(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		v, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
