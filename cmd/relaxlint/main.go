// Command relaxlint is the repository's custom static analyzer. It
// enforces model-layer determinism (no wall clocks, no global RNG, no
// escaping map order), lock discipline, error discipline, and spec
// purity — the properties the compiler cannot check but the paper's
// reproducibility rests on. See internal/lint for the rule families
// and the //lint:ignore suppression convention.
//
// Usage:
//
//	relaxlint [-json] [-dir root] [-model suffixes] [patterns...]
//
// Patterns default to ./... and are interpreted relative to -dir
// (default "."). Exit status is 0 when clean, 1 when findings are
// reported, and 2 on analysis failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxlattice/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI consumption)")
	dir := flag.String("dir", ".", "module root to analyze")
	model := flag.String("model", "", "comma-separated import-path suffixes of model-layer packages (default: built-in list)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	if *model != "" {
		cfg.ModelPaths = strings.Split(*model, ",")
	}

	diags, err := lint.Run(*dir, cfg, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relaxlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "relaxlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "relaxlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
