// Command relaxlint is the repository's custom static analyzer. It
// enforces model-layer determinism (syntactically and by
// interprocedural taint), lock discipline and lock-acquisition
// ordering, error discipline, spec purity, and the paper's
// quorum-intersection side conditions — the properties the compiler
// cannot check but the paper's reproducibility rests on. See
// internal/lint for the rule families and the //lint:ignore
// suppression convention.
//
// Usage:
//
//	relaxlint [flags] [patterns...]
//
//	-json            emit findings as a JSON array (stable order)
//	-dir root        module root to analyze (default ".")
//	-model suffixes  override the model-layer package list
//	-sites n         replica count for the speccheck certifier (default 5)
//	-proof file      write the speccheck proof artifact (JSON) to file
//	-baseline file   suppress findings recorded in a baseline snapshot
//	-write-baseline file
//	                 write the current findings as the new baseline and
//	                 exit 0 (CI ratchet: accepted debt, not a mute)
//
// Patterns default to ./... and are interpreted relative to -dir.
// Exit status is 0 when clean (or when every finding is baselined),
// 1 when findings are reported, and 2 on analysis failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"relaxlattice/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (for CI consumption)")
	dir := flag.String("dir", ".", "module root to analyze")
	model := flag.String("model", "", "comma-separated import-path suffixes of model-layer packages (default: built-in list)")
	sites := flag.Int("sites", 5, "replica count for the speccheck quorum certifier")
	proofPath := flag.String("proof", "", "write the speccheck proof artifact (JSON) to this file")
	baselinePath := flag.String("baseline", "", "suppress findings recorded in this baseline file")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	if *model != "" {
		cfg.ModelPaths = strings.Split(*model, ",")
	}
	cfg.Sites = *sites

	pkgs, err := lint.Load(*dir)
	if err != nil {
		fail(err)
	}
	diags, err := lint.RunPackages(pkgs, cfg, patterns)
	if err != nil {
		fail(err)
	}
	if *proofPath != "" {
		proof, ok := lint.SpecProofs(pkgs, cfg.Sites)
		if !ok {
			fail(fmt.Errorf("no quorum/claim literals found; nothing to prove"))
		}
		data, err := json.MarshalIndent(proof, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*proofPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "relaxlint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fail(err)
		}
		diags = lint.FilterBaseline(diags, base)
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean tree is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fail(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "relaxlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "relaxlint:", err)
	os.Exit(2)
}
