package main

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"relaxlattice/internal/history"
	"relaxlattice/internal/relaxd"
)

// startServer runs the server in a goroutine and returns its addresses
// plus a shutdown function that waits for the clean exit.
func startServer(t *testing.T, args []string) ([]string, *bytes.Buffer, func() error) {
	t.Helper()
	var out bytes.Buffer
	var mu sync.Mutex // out is written by the server goroutine
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	ready := make(chan []string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(args, w, ready, stop) }()
	select {
	case addrs := <-ready:
		return addrs, &out, func() error {
			close(stop)
			return <-done
		}
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, out.String())
		return nil, nil, nil
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServeAllSitesAndRecover(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-sites", "3", "-listen", "127.0.0.1:0", "-dir", dir, "-sync-every", "4"}

	addrs, out, shutdown := startServer(t, args)
	if len(addrs) != 3 {
		t.Fatalf("got %d addresses, want 3", len(addrs))
	}
	tr := relaxd.NewTCPTransport(addrs, 0)
	cl := relaxd.NewClient(relaxd.PQClientConfig(tr), 4)
	for i := 0; i < 9; i++ {
		inv := history.EnqInv(i%5 + 1)
		if i%3 == 2 {
			inv = history.DeqInv()
		}
		if _, err := cl.Execute(inv); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	tr.Close()
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "shut down cleanly") {
		t.Fatalf("no clean-shutdown line:\n%s", out.String())
	}

	// Restart over the same directories: the recovery lines must report
	// the entries the first incarnation made durable.
	addrs, out, shutdown = startServer(t, args)
	if !strings.Contains(out.String(), "recovered 9 entries") {
		t.Fatalf("restart did not report recovery:\n%s", out.String())
	}
	tr = relaxd.NewTCPTransport(addrs, 0)
	defer tr.Close()
	cl = relaxd.NewClient(relaxd.PQClientConfig(tr), 5)
	if _, err := cl.Execute(history.DeqInv()); err != nil {
		t.Fatalf("op against recovered service: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServeSingleSite(t *testing.T) {
	dir := t.TempDir()
	addrs, out, shutdown := startServer(t,
		[]string{"-site", "2", "-listen", "127.0.0.1:0", "-dir", dir})
	if len(addrs) != 1 {
		t.Fatalf("got %d addresses, want 1", len(addrs))
	}
	if !strings.Contains(out.String(), "site 2 recovered 0 entries") {
		t.Fatalf("no recovery line for a fresh store:\n%s", out.String())
	}
	// A lone site of a larger service answers protocol messages even
	// though no quorum can form around it alone.
	tr := relaxd.NewTCPTransport([]string{addrs[0]}, 0)
	defer tr.Close()
	resp, err := tr.RoundTrip(0, relaxd.Message{Type: relaxd.MsgPing})
	if err != nil || resp.Type != relaxd.MsgPong {
		t.Fatalf("ping: %v (type %d)", err, resp.Type)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestJoinMode(t *testing.T) {
	dir := t.TempDir()
	addrs, _, shutdown := startServer(t,
		[]string{"-sites", "3", "-listen", "127.0.0.1:0", "-dir", dir, "-snapshot-every", "4", "-segment-records", "3"})
	tr := relaxd.NewTCPTransport(addrs, 0)
	cl := relaxd.NewClient(relaxd.PQClientConfig(tr), 4)
	for i := 0; i < 9; i++ {
		inv := history.EnqInv(i%5 + 1)
		if i%3 == 2 {
			inv = history.DeqInv()
		}
		if _, err := cl.Execute(inv); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	tr.Close()

	// A wiped replacement for site 2 joins from the live peers before it
	// serves: fresh directory, -join, the running service's addresses.
	joinAddrs, out, joinShutdown := startServer(t,
		[]string{"-site", "2", "-listen", "127.0.0.1:0", "-dir", t.TempDir(),
			"-join", "-peers", strings.Join(addrs, ",")})
	if !strings.Contains(out.String(), "site 2 joined from site 0 (8 snapshot + 1 wal entries, certified)") {
		t.Fatalf("no join announce line:\n%s", out.String())
	}
	jtr := relaxd.NewTCPTransport([]string{joinAddrs[0]}, 0)
	defer jtr.Close()
	resp, err := jtr.RoundTrip(0, relaxd.Message{Type: relaxd.MsgGetLog})
	if err != nil || resp.Type != relaxd.MsgLog {
		t.Fatalf("get log from joined site: %v (type %d)", err, resp.Type)
	}
	if len(resp.Entries) != 9 {
		t.Fatalf("joined site serves %d entries, want 9", len(resp.Entries))
	}
	if err := joinShutdown(); err != nil {
		t.Fatalf("joiner shutdown: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-sites", "3", "-site", "1"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("-sites with -site accepted")
	}
	if err := run(nil, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("neither -sites nor -site accepted")
	}
	if err := run([]string{"-site", "1", "-join"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("-join without -peers accepted")
	}
	if err := run([]string{"-sites", "3", "-join", "-peers", "x:1"}, &bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("-join in -sites mode accepted")
	}
}
