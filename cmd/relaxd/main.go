// relaxd serves replica sites of the replicated taxi priority queue
// over TCP: each site is one goroutine-per-connection server in front
// of a durable site store (write-ahead log + published snapshots).
// Killing a relaxd hard — kill -9, power loss — and restarting it
// recovers each site from its store; the startup line reports exactly
// what recovery found (snapshot entries, WAL entries, repaired bytes),
// and the crash-injection battery in internal/relaxd proves the
// recovered state certifies at the claimed lattice rung.
//
// Two shapes:
//
//	relaxd -sites 5 -listen 127.0.0.1:0 -dir /var/lib/relaxd
//	    one process serving all five sites (goroutine per site), each
//	    on its own port, each with its own store under dir/site<i>
//
//	relaxd -site 2 -listen 127.0.0.1:7412 -dir /var/lib/relaxd/site2
//	    one process serving exactly one site — the process-per-site
//	    deployment CI's kill -9 smoke uses, so one site can be killed
//	    without taking the others down
//
//	relaxd -site 2 -listen 127.0.0.1:7412 -dir /var/lib/relaxd/site2 \
//	       -join -peers 127.0.0.1:7410,127.0.0.1:7411,...
//	    process-per-site with snapshot shipping: before serving, the
//	    site fetches a peer's published snapshot + WAL suffix, refuses
//	    it unless the combined history certifies at the claimed rung,
//	    and installs it durably — how a wiped site rejoins without
//	    replaying client traffic
//
// The server exits cleanly on SIGINT/SIGTERM (final fsync included);
// anything harder is what the WAL is for.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"relaxlattice/internal/relaxd"
)

func main() {
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "relaxd:", err)
		os.Exit(1)
	}
}

// run starts the configured sites, announces their addresses (and, when
// ready is non-nil, sends them for tests to connect to), and serves
// until stop closes. It is the whole server in testable form.
func run(args []string, w io.Writer, ready chan<- []string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("relaxd", flag.ContinueOnError)
	sites := fs.Int("sites", 0, "serve this many sites from one process (site i listens on base port + i; with port 0, each picks a free port)")
	site := fs.Int("site", -1, "serve exactly this site index (process-per-site mode)")
	listen := fs.String("listen", "127.0.0.1:0", "listen address (base address in -sites mode)")
	dir := fs.String("dir", "", "store directory; empty serves ephemeral (non-durable) sites. -sites mode uses dir/site<i>")
	snapshotEvery := fs.Int("snapshot-every", 0, "publish a snapshot and reset the WAL every N appended entries (0 disables)")
	syncEvery := fs.Int("sync-every", 1, "fsync the WAL every N appends (1 = every append, the durable default)")
	segmentRecords := fs.Int("segment-records", 0, "rotate to a new WAL segment every N records (0 = single segment); snapshots compact sealed segments")
	join := fs.Bool("join", false, "before serving, rebuild state from a peer via snapshot shipping (-site mode; requires -peers)")
	peers := fs.String("peers", "", "comma-separated site addresses in site order, for -join (this site's own slot may be a placeholder)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*sites > 0) == (*site >= 0) {
		return fmt.Errorf("exactly one of -sites or -site is required")
	}
	if *join && (*site < 0 || *peers == "") {
		return fmt.Errorf("-join requires -site and -peers")
	}
	opts := relaxd.StoreOptions{SyncEvery: *syncEvery, SegmentRecords: *segmentRecords}

	var replicas []*relaxd.Replica
	var indexes []int
	if *site >= 0 {
		r, info, err := relaxd.OpenReplica(*site, *dir, opts)
		if err != nil {
			return err
		}
		replicas = []*relaxd.Replica{r}
		indexes = []int{*site}
		announceRecovery(w, *site, *dir, info)
		if *join {
			// Join strictly before listening: JoinFrom installs under the
			// replica lock, and a site that is not yet reachable cannot
			// race client appends against the install.
			tr := relaxd.NewPooledTransport(strings.Split(*peers, ","), 0)
			jinfo, err := r.JoinFrom(relaxd.JoinConfig{Transport: tr, Certify: relaxd.PQCertify()})
			tr.Close()
			if err != nil {
				r.Close()
				return fmt.Errorf("join: %w", err)
			}
			fmt.Fprintf(w, "relaxd: site %d joined from site %d (%d snapshot + %d wal entries, certified)\n",
				*site, jinfo.Peer, jinfo.SnapshotEntries, jinfo.WALEntries)
		}
	} else {
		for i := 0; i < *sites; i++ {
			sub := ""
			if *dir != "" {
				sub = filepath.Join(*dir, fmt.Sprintf("site%d", i))
			}
			r, info, err := relaxd.OpenReplica(i, sub, opts)
			if err != nil {
				closeAll(nil, replicas)
				return err
			}
			replicas = append(replicas, r)
			indexes = append(indexes, i)
			announceRecovery(w, i, sub, info)
		}
	}
	for _, r := range replicas {
		r.SnapshotEvery = *snapshotEvery
	}

	servers := make([]*relaxd.SiteServer, len(replicas))
	addrs := make([]string, len(replicas))
	for i, r := range replicas {
		addr, err := siteAddr(*listen, i, *site >= 0)
		if err != nil {
			closeAll(servers[:i], replicas[i:])
			return err
		}
		s, err := relaxd.ListenSite(addr, r)
		if err != nil {
			closeAll(servers[:i], replicas[i:])
			return fmt.Errorf("site %d: %w", indexes[i], err)
		}
		servers[i] = s
		addrs[i] = s.Addr()
		fmt.Fprintf(w, "relaxd: site %d listening on %s\n", indexes[i], s.Addr())
	}
	if ready != nil {
		ready <- addrs
	}
	<-stop
	var first error
	for _, s := range servers {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	fmt.Fprintln(w, "relaxd: shut down cleanly")
	return first
}

// announceRecovery prints the recovery line — the operator's evidence
// of where a restart landed.
func announceRecovery(w io.Writer, site int, dir string, info relaxd.RecoveryInfo) {
	if dir == "" {
		fmt.Fprintf(w, "relaxd: site %d ephemeral (no store)\n", site)
		return
	}
	fmt.Fprintf(w, "relaxd: site %d recovered %d entries (%d snapshot + %d wal), repaired %d bytes, %d segment(s), compacted through %d\n",
		site, info.SnapshotEntries+info.WALEntries, info.SnapshotEntries, info.WALEntries,
		info.RepairedBytes, info.Segments, info.CompactedThrough)
}

// siteAddr derives site i's listen address from the base address: the
// configured port (0 keeps 0, letting the kernel pick) offset by i in
// -sites mode.
func siteAddr(base string, i int, single bool) (string, error) {
	if single || i == 0 {
		return base, nil
	}
	host, port, err := splitHostPort(base)
	if err != nil {
		return "", err
	}
	if port == 0 {
		return fmt.Sprintf("%s:0", host), nil
	}
	return fmt.Sprintf("%s:%d", host, port+i), nil
}

// splitHostPort parses "host:port" with a numeric port.
func splitHostPort(addr string) (string, int, error) {
	at := strings.LastIndex(addr, ":")
	if at < 0 {
		return "", 0, fmt.Errorf("listen address %q has no port", addr)
	}
	var port int
	if _, err := fmt.Sscanf(addr[at+1:], "%d", &port); err != nil {
		return "", 0, fmt.Errorf("listen address %q has a bad port", addr)
	}
	return addr[:at], port, nil
}

// closeAll releases partially started servers and unserved replicas.
func closeAll(servers []*relaxd.SiteServer, replicas []*relaxd.Replica) {
	for _, s := range servers {
		s.Close()
	}
	for _, r := range replicas {
		r.Close()
	}
}
