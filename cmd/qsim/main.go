// qsim simulates a replicated priority queue managed by quorum
// consensus under site crashes and network partitions, demonstrating
// graceful degradation: as failures strike, degrading clients keep
// operating against whatever sites they can reach, and the tool audits
// the observed history against the taxi relaxation lattice to report
// exactly how far behavior degraded (Section 3.3).
//
// Usage:
//
//	qsim [-sites N] [-ops N] [-seed N] [-pcrash P] [-ppartition P] [-assignment Q1Q2|Q1|Q2|none] [-degrade]
//	qsim -adaptive [-online-check] [-sites N] [-ops N] [-seed N] [-mttf T] [-mttr T] [-mtbp T] [-dwell T] [-horizon T]
//
// In -adaptive mode clients carry a retry/backoff policy and an
// adaptive degradation controller over the ladder Q1Q2 → Q1 → none on
// a discrete-event engine: stochastic crash/partition processes
// (stopped at half the horizon) drive the controller down the ladder
// and the background probe brings it back; the run ends with the same
// lattice audit, now checked against the controller's claimed floor.
// With -online-check an incremental checker (internal/relaxcheck) also
// rides the observation path, tracking the lattice position live and
// flagging any operation that escapes the claimed level as it happens.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/relaxcheck"
	"relaxlattice/internal/resilience"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func main() {
	sites := flag.Int("sites", 5, "replica sites")
	ops := flag.Int("ops", 60, "operations to attempt")
	seed := flag.Int64("seed", 1987, "random seed")
	pCrash := flag.Float64("pcrash", 0.05, "per-op probability a random site crashes")
	pRepair := flag.Float64("prepair", 0.10, "per-op probability all sites are restored and healed")
	pPartition := flag.Float64("ppartition", 0.05, "per-op probability the network splits in two")
	assignment := flag.String("assignment", "Q1Q2", "quorum assignment: Q1Q2, Q1, Q2, none")
	degrade := flag.Bool("degrade", true, "clients fall down the lattice instead of failing")
	adaptive := flag.Bool("adaptive", false, "run retry/backoff clients with an adaptive degradation controller")
	onlineCheck := flag.Bool("online-check", false, "adaptive: attach the online incremental relaxation checker to the observation path")
	mttf := flag.Float64("mttf", 15, "adaptive: mean time between site crashes (sim time; 0 disables)")
	mttr := flag.Float64("mttr", 10, "adaptive: mean site repair time (sim time)")
	mtbp := flag.Float64("mtbp", 40, "adaptive: mean time between partitions (sim time; 0 disables)")
	dwell := flag.Float64("dwell", 15, "adaptive: mean partition dwell before healing (sim time)")
	horizon := flag.Float64("horizon", 400, "adaptive: simulation horizon (faults stop at half of it)")
	flag.Parse()

	var err error
	if *adaptive {
		err = runAdaptive(os.Stdout, *sites, *ops, *seed,
			cluster.FaultConfig{MTTF: *mttf, MTTR: *mttr, MTBP: *mtbp, PartitionDwell: *dwell}, *horizon, *onlineCheck)
	} else {
		err = run(os.Stdout, *sites, *ops, *seed, *pCrash, *pRepair, *pPartition, *assignment, *degrade)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, sites, ops int, seed int64, pCrash, pRepair, pPartition float64, assignment string, degrade bool) error {
	assigns := quorum.TaxiAssignments(sites)
	voting, ok := assigns[assignment]
	if !ok {
		return fmt.Errorf("unknown assignment %q", assignment)
	}
	fmt.Fprintf(w, "replicated taxi queue: %d sites, %s, degrade=%v\n", sites, voting, degrade)
	c := cluster.New(cluster.Config{
		Sites:   sites,
		Quorums: voting,
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	})
	g := sim.NewRNG(seed)
	counts := sim.NewCounter()
	lat := core.TaxiSimpleLattice()
	monitor := lattice.NewMonitor(lat)
	describe := func(sets []lattice.Set) string {
		parts := make([]string, 0, len(sets))
		for _, s := range sets {
			a, _ := lat.Phi(s)
			parts = append(parts, a.Name())
		}
		return strings.Join(parts, ", ")
	}
	level := describe(monitor.Current())
	nextReq := 1
	for i := 0; i < ops; i++ {
		// Environment events (Section 2.3): crashes, partitions, repair.
		switch {
		case g.Bool(pCrash):
			s := g.Intn(sites)
			c.Crash(s)
			counts.Add("event:crash", 1)
			fmt.Fprintf(w, "  !! site %d crashes\n", s)
		case g.Bool(pPartition):
			cut := 1 + g.Intn(sites-1)
			var left, right []int
			for s := 0; s < sites; s++ {
				if s < cut {
					left = append(left, s)
				} else {
					right = append(right, s)
				}
			}
			c.Partition(left, right)
			counts.Add("event:partition", 1)
			fmt.Fprintf(w, "  !! network splits %v | %v\n", left, right)
		case g.Bool(pRepair):
			for s := 0; s < sites; s++ {
				c.Restore(s)
			}
			c.Heal()
			c.Gossip()
			counts.Add("event:repair", 1)
			fmt.Fprintln(w, "  !! repair: all sites restored, logs gossiped")
		}

		cl := c.Client(g.Intn(sites))
		cl.Degrade = degrade
		var op history.Op
		var err error
		if g.Bool(0.55) {
			prio := 1 + g.Intn(9)
			op, err = cl.Execute(history.EnqInv(prio))
			if err == nil {
				nextReq++
			}
		} else {
			op, err = cl.Execute(history.DeqInv())
		}
		report(counts, op, err)
		// Live degradation alarm: the monitor tracks, operation by
		// operation, the strongest behaviors consistent with what has
		// been observed.
		if err == nil {
			monitor.Feed(op)
			if now := describe(monitor.Current()); now != level {
				fmt.Fprintf(w, "  >> degradation alarm after op %d: behavior now %s\n", monitor.Len(), now)
				level = now
			}
		}
	}

	fmt.Fprintln(w, "\noutcome counts:")
	for _, name := range counts.Names() {
		fmt.Fprintf(w, "  %-18s %d\n", name, counts.Get(name))
	}

	obs := c.Observed()
	fmt.Fprintf(w, "\nobserved history (%d ops): %v\n", len(obs), obs)
	fmt.Fprintln(w, "\ndegradation audit against the taxi lattice:")

	sets, accepted := lat.WeakestAccepting(obs)
	if !accepted {
		fmt.Fprintln(w, "  history outside the lattice (should not happen)")
		return nil
	}
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Fprintf(w, "  strongest surviving constraints %s → behaves as %s\n", lat.Universe.Format(s), a.Name())
	}
	for _, pair := range []struct {
		name string
		a    automaton.Automaton
	}{
		{"PQueue (preferred)", specs.PriorityQueue()},
		{"MPQueue (Q2 relaxed)", specs.MultiPriorityQueue()},
		{"OPQueue (Q1 relaxed)", specs.OutOfOrderQueue()},
		{"DegenPQueue (both relaxed)", specs.DegeneratePriorityQueue()},
	} {
		fmt.Fprintf(w, "  accepted by %-28s %v\n", pair.name+":", automaton.Accepts(pair.a, obs))
	}
	return nil
}

// runAdaptive drives one adaptive client through a stochastic fault
// regime on a discrete-event engine and audits the outcome.
func runAdaptive(w io.Writer, sites, ops int, seed int64, faultCfg cluster.FaultConfig, horizon float64, onlineCheck bool) error {
	opts := resilience.DefaultOptions()
	fmt.Fprintf(w, "adaptive taxi queue: %d sites, ladder Q1Q2 → Q1 → none, %d ops, horizon %.0f\n", sites, ops, horizon)
	fmt.Fprintf(w, "faults until t=%.0f: MTTF=%g MTTR=%g MTBP=%g dwell=%g\n\n",
		horizon/2, faultCfg.MTTF, faultCfg.MTTR, faultCfg.MTBP, faultCfg.PartitionDwell)
	lat := core.TaxiSimpleLattice()
	ladder := cluster.TaxiLadder(sites)
	var checker *relaxcheck.Checker
	ccfg := cluster.Config{
		Sites:   sites,
		Quorums: quorum.TaxiAssignments(sites)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	}
	if onlineCheck {
		checker = relaxcheck.New(lat, relaxcheck.Options{Claims: relaxcheck.TaxiClaims(lat.Universe)})
		ccfg.Audit = checker
	}
	c := cluster.New(ccfg)
	if checker != nil {
		// The client starts on the top rung; the claim makes the
		// pre-descent phase checked rather than vacuous.
		checker.ObserveClaim(-1, ladder[0].Name)
	}
	g := sim.NewRNG(seed)
	var engine sim.Engine
	a := c.Adaptive(0, ladder, opts, &engine, g.Split())
	faults := cluster.NewFaultProcess(c, &engine, g.Split(), faultCfg)
	faults.Start()
	engine.At(horizon/2, faults.Stop)

	counts := sim.NewCounter()
	var latency sim.Histogram
	at := 0.0
	for i := 0; i < ops; i++ {
		at += g.Exp(horizon / 2 / float64(ops+1))
		inv := history.DeqInv()
		if i%3 != 2 {
			inv = history.EnqInv(1 + g.Intn(9))
		}
		engine.At(at, func() {
			from := a.Current().Name
			a.Submit(inv, func(op history.Op, out resilience.Outcome) {
				latency.Observe(out.Elapsed)
				if out.Err == nil {
					counts.Add("ok:"+op.Name, 1)
				} else {
					counts.Add("failed:"+out.Reason, 1)
				}
				if out.Attempts > 1 {
					counts.Add("retries", out.Attempts-1)
				}
				if now := a.Current().Name; now != from {
					fmt.Fprintf(w, "  >> %s: controller moved %s → %s (attempts=%d)\n", inv.Name, from, now, out.Attempts)
				}
			})
		})
	}
	engine.Run(horizon)

	fmt.Fprintf(w, "\n%s\n", faults)
	fmt.Fprintln(w, "outcome counts:")
	for _, name := range counts.Names() {
		fmt.Fprintf(w, "  %-18s %d\n", name, counts.Get(name))
	}
	fmt.Fprintf(w, "mean latency %.2f, p95 %.2f (sim time)\n", latency.Mean(), latency.Quantile(0.95))
	ctrl := a.Controller()
	fmt.Fprintf(w, "\ncontroller: level=%s floor=%s descents=%d ascents=%d\n",
		a.Current().Name, a.Floor().Name, ctrl.Descents(), ctrl.Ascents())
	for _, tr := range ctrl.Transitions() {
		fmt.Fprintf(w, "  %-8s %s → %s\n", tr.Reason, ladder[tr.From].Name, ladder[tr.To].Name)
	}
	if a.Current().Name != ladder[0].Name {
		fmt.Fprintln(w, "  !! not back at the top rung by the horizon")
	}

	obs := c.Observed()
	fmt.Fprintf(w, "\nobserved history (%d ops); audit against the taxi lattice:\n", len(obs))
	sets, accepted := lat.WeakestAccepting(obs)
	if !accepted {
		fmt.Fprintln(w, "  history outside the lattice (should not happen)")
		return nil
	}
	for _, s := range sets {
		au, _ := lat.Phi(s)
		fmt.Fprintf(w, "  strongest surviving constraints %s → behaves as %s\n", lat.Universe.Format(s), au.Name())
	}
	claims := map[string]lattice.Set{"Q1Q2": lat.Universe.All(), "Q1": lat.Universe.Named(core.ConstraintQ1), "none": 0}
	claimed := claims[a.Floor().Name]
	sound := false
	for _, s := range sets {
		if claimed.SubsetOf(s) {
			sound = true
		}
	}
	fmt.Fprintf(w, "  claimed floor %s is sound (history at least that good): %v\n", a.Floor().Name, sound)
	if checker != nil {
		fmt.Fprintf(w, "\nonline checker: steps=%d level=%s floor=%s frontier=%d\n",
			checker.Steps(), checker.Level(), checker.FloorClaim(), checker.MaxFrontier())
		if v := checker.Violation(); v != nil {
			fmt.Fprintf(w, "  !! live violation: %v\n", v)
		}
		online := checker.Current()
		agree := len(online) == len(sets)
		for i := range online {
			if !agree || online[i] != sets[i] {
				agree = false
			}
		}
		fmt.Fprintf(w, "  online verdict equals the offline audit: %v\n", agree)
	}
	return nil
}

func report(counts *sim.Counter, op history.Op, err error) {
	switch {
	case err == nil:
		counts.Add("ok:"+op.Name, 1)
	default:
		counts.Add("unavailable", 1)
	}
}
