// qsim simulates a replicated priority queue managed by quorum
// consensus under site crashes and network partitions, demonstrating
// graceful degradation: as failures strike, degrading clients keep
// operating against whatever sites they can reach, and the tool audits
// the observed history against the taxi relaxation lattice to report
// exactly how far behavior degraded (Section 3.3).
//
// Usage:
//
//	qsim [-sites N] [-ops N] [-seed N] [-pcrash P] [-ppartition P] [-assignment Q1Q2|Q1|Q2|none] [-degrade]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/sim"
	"relaxlattice/internal/specs"
)

func main() {
	sites := flag.Int("sites", 5, "replica sites")
	ops := flag.Int("ops", 60, "operations to attempt")
	seed := flag.Int64("seed", 1987, "random seed")
	pCrash := flag.Float64("pcrash", 0.05, "per-op probability a random site crashes")
	pRepair := flag.Float64("prepair", 0.10, "per-op probability all sites are restored and healed")
	pPartition := flag.Float64("ppartition", 0.05, "per-op probability the network splits in two")
	assignment := flag.String("assignment", "Q1Q2", "quorum assignment: Q1Q2, Q1, Q2, none")
	degrade := flag.Bool("degrade", true, "clients fall down the lattice instead of failing")
	flag.Parse()

	if err := run(os.Stdout, *sites, *ops, *seed, *pCrash, *pRepair, *pPartition, *assignment, *degrade); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, sites, ops int, seed int64, pCrash, pRepair, pPartition float64, assignment string, degrade bool) error {
	assigns := quorum.TaxiAssignments(sites)
	voting, ok := assigns[assignment]
	if !ok {
		return fmt.Errorf("unknown assignment %q", assignment)
	}
	fmt.Fprintf(w, "replicated taxi queue: %d sites, %s, degrade=%v\n", sites, voting, degrade)
	c := cluster.New(cluster.Config{
		Sites:   sites,
		Quorums: voting,
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	})
	g := sim.NewRNG(seed)
	counts := sim.NewCounter()
	lat := core.TaxiSimpleLattice()
	monitor := lattice.NewMonitor(lat)
	describe := func(sets []lattice.Set) string {
		parts := make([]string, 0, len(sets))
		for _, s := range sets {
			a, _ := lat.Phi(s)
			parts = append(parts, a.Name())
		}
		return strings.Join(parts, ", ")
	}
	level := describe(monitor.Current())
	nextReq := 1
	for i := 0; i < ops; i++ {
		// Environment events (Section 2.3): crashes, partitions, repair.
		switch {
		case g.Bool(pCrash):
			s := g.Intn(sites)
			c.Crash(s)
			counts.Add("event:crash", 1)
			fmt.Fprintf(w, "  !! site %d crashes\n", s)
		case g.Bool(pPartition):
			cut := 1 + g.Intn(sites-1)
			var left, right []int
			for s := 0; s < sites; s++ {
				if s < cut {
					left = append(left, s)
				} else {
					right = append(right, s)
				}
			}
			c.Partition(left, right)
			counts.Add("event:partition", 1)
			fmt.Fprintf(w, "  !! network splits %v | %v\n", left, right)
		case g.Bool(pRepair):
			for s := 0; s < sites; s++ {
				c.Restore(s)
			}
			c.Heal()
			c.Gossip()
			counts.Add("event:repair", 1)
			fmt.Fprintln(w, "  !! repair: all sites restored, logs gossiped")
		}

		cl := c.Client(g.Intn(sites))
		cl.Degrade = degrade
		var op history.Op
		var err error
		if g.Bool(0.55) {
			prio := 1 + g.Intn(9)
			op, err = cl.Execute(history.EnqInv(prio))
			if err == nil {
				nextReq++
			}
		} else {
			op, err = cl.Execute(history.DeqInv())
		}
		report(counts, op, err)
		// Live degradation alarm: the monitor tracks, operation by
		// operation, the strongest behaviors consistent with what has
		// been observed.
		if err == nil {
			monitor.Feed(op)
			if now := describe(monitor.Current()); now != level {
				fmt.Fprintf(w, "  >> degradation alarm after op %d: behavior now %s\n", monitor.Len(), now)
				level = now
			}
		}
	}

	fmt.Fprintln(w, "\noutcome counts:")
	for _, name := range counts.Names() {
		fmt.Fprintf(w, "  %-18s %d\n", name, counts.Get(name))
	}

	obs := c.Observed()
	fmt.Fprintf(w, "\nobserved history (%d ops): %v\n", len(obs), obs)
	fmt.Fprintln(w, "\ndegradation audit against the taxi lattice:")

	sets, accepted := lat.WeakestAccepting(obs)
	if !accepted {
		fmt.Fprintln(w, "  history outside the lattice (should not happen)")
		return nil
	}
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Fprintf(w, "  strongest surviving constraints %s → behaves as %s\n", lat.Universe.Format(s), a.Name())
	}
	for _, pair := range []struct {
		name string
		a    automaton.Automaton
	}{
		{"PQueue (preferred)", specs.PriorityQueue()},
		{"MPQueue (Q2 relaxed)", specs.MultiPriorityQueue()},
		{"OPQueue (Q1 relaxed)", specs.OutOfOrderQueue()},
		{"DegenPQueue (both relaxed)", specs.DegeneratePriorityQueue()},
	} {
		fmt.Fprintf(w, "  accepted by %-28s %v\n", pair.name+":", automaton.Accepts(pair.a, obs))
	}
	return nil
}

func report(counts *sim.Counter, op history.Op, err error) {
	switch {
	case err == nil:
		counts.Add("ok:"+op.Name, 1)
	default:
		counts.Add("unavailable", 1)
	}
}
