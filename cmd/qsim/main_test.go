package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQsimRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, 5, 40, 1987, 0.05, 0.10, 0.05, "Q1Q2", true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run(&b, 5, 40, 1987, 0.05, 0.10, 0.05, "Q1Q2", true); err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed produced different output")
	}
	out := a.String()
	for _, want := range []string{"replicated taxi queue", "degradation audit", "observed history"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestQsimUnknownAssignment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 5, 10, 1, 0, 0, 0, "nope", true); err == nil {
		t.Errorf("expected error")
	}
}

// Without degradation and without faults, the queue behaves preferred.
func TestQsimNoFaultsPreferred(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 5, 50, 7, 0, 0, 0, "Q1Q2", false); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "accepted by PQueue (preferred):          true") {
		t.Errorf("fault-free run should stay preferred:\n%s", out)
	}
}
