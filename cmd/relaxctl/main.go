// relaxctl is the command-line front end to the relaxation-lattice
// library: it lists and runs the paper's experiments, prints the
// built-in relaxation lattices, verifies the paper's theorems by
// bounded model checking, and audits observed histories against a
// lattice (reporting how far an execution degraded).
//
// Usage:
//
//	relaxctl list
//	relaxctl run [-seed N] [-trials N] [-maxlen N] [-maxelem N] [-sites N] [-parallel] [ID|all]
//	relaxctl lattice [taxi|taxi-prime|fifo|account|account-full|semiqueue|stuttering|combined]
//	relaxctl dot (lattice|automaton) [name]
//	relaxctl verify [-maxlen N] [-maxelem N]
//	relaxctl audit -lattice NAME "Enq(1)/Ok() Deq()/Ok(1) ..."
//	relaxctl census -lattice NAME "HISTORY" "HISTORY" ...
//	relaxctl trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/core"
	"relaxlattice/internal/env"
	"relaxlattice/internal/experiments"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/specs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "relaxctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return usage(w)
	}
	switch args[0] {
	case "list":
		return list(w)
	case "run":
		return runExperiments(args[1:], w)
	case "lattice":
		return printLattice(args[1:], w)
	case "dot":
		return printDOT(args[1:], w)
	case "verify":
		return verify(args[1:], w)
	case "audit":
		return audit(args[1:], w)
	case "trace":
		return trace(args[1:], w)
	case "census":
		return census(args[1:], w)
	case "help", "-h", "--help":
		return usage(w)
	default:
		return fmt.Errorf("unknown command %q (try: relaxctl help)", args[0])
	}
}

func usage(w io.Writer) error {
	fmt.Fprintln(w, `relaxctl — relaxation lattices for graceful degradation (Herlihy & Wing, PODC 1987)

commands:
  list                         list the paper's experiments
  run [flags] [ID|all]         run one experiment or all of them
  lattice [name]               print a built-in relaxation lattice
                               (taxi, taxi-prime, fifo, account, account-full,
                                semiqueue, stuttering, combined)
  dot lattice [name]           emit a lattice Hasse diagram in Graphviz DOT
  dot automaton [name]         emit an automaton state graph in DOT
                               (bag, fifo, pq, mpq, opq, degen, account)
  verify [flags]               bounded model checking of Theorem 4 and
                               companion claims
  audit -lattice NAME HISTORY  report the strongest lattice elements
                               accepting an observed history
  trace                        walk a canned degradation episode through the
                               combined environment x object automaton (§2.3)
  census -lattice NAME H H ..  tally a corpus of observed histories by the
                               strongest lattice element accepting each

flags for run/verify:
  -seed N      random seed (default 1987)
  -trials N    Monte-Carlo trials
  -maxlen N    history length bound
  -maxelem N   element domain bound
  -sites N     replica sites for cluster simulations
  -parallel    (run all) run experiments concurrently; output is
               byte-identical to the serial run
  -workers N   (run) worker count for -parallel (0 = GOMAXPROCS)

resilience flags (run; they shape X05's adaptive clients):
  -retries N        attempt cap per operation
  -budget T         per-operation deadline budget (sim time)
  -backoff T        base backoff before the first retry
  -descend-after N  consecutive failures before descending a rung
  -ascend-after N   consecutive successes before probing upward
  -probe-every T    background upward-probe period (sim time)
  -hedge N          rungs above the current one a probe may test

soak flags (run; they size X06's online-checking sweep):
  -soak-ops N       operations per soak run
  -soak-clients N   concurrent clients per soak run

observability flags (run):
  -metrics F   write the deterministic metrics snapshot (JSON) to F;
               byte-identical across runs and worker counts at a seed
  -trace F     write the logical-clock event journal (JSON Lines) to F;
               same byte-determinism guarantee
  -pprof ADDR  serve net/http/pprof on ADDR; scheduling-dependent
               runtime metrics (cache hit rates, shard shapes) appear
               at /debug/vars under "relaxlattice"
  (trace also accepts -trace F to journal its degradation episodes)`)
	return nil
}

func list(w io.Writer) error {
	for _, e := range experiments.All() {
		fmt.Fprintf(w, "%s  %-90s %s\n", e.ID, e.Title, e.Paper)
	}
	return nil
}

func configFlags(fs *flag.FlagSet) *experiments.Config {
	cfg := experiments.Default()
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	fs.IntVar(&cfg.Trials, "trials", cfg.Trials, "Monte-Carlo trials")
	fs.IntVar(&cfg.Bound.MaxLen, "maxlen", cfg.Bound.MaxLen, "history length bound")
	fs.IntVar(&cfg.Bound.MaxElem, "maxelem", cfg.Bound.MaxElem, "element domain bound")
	fs.IntVar(&cfg.Sites, "sites", cfg.Sites, "replica sites")
	fs.IntVar(&cfg.Resilience.Policy.MaxAttempts, "retries", cfg.Resilience.Policy.MaxAttempts,
		"adaptive clients: attempt cap per operation (X05)")
	fs.Float64Var(&cfg.Resilience.Policy.Budget, "budget", cfg.Resilience.Policy.Budget,
		"adaptive clients: per-operation deadline budget in sim time (X05)")
	fs.Float64Var(&cfg.Resilience.Policy.BaseBackoff, "backoff", cfg.Resilience.Policy.BaseBackoff,
		"adaptive clients: base backoff before the first retry (X05)")
	fs.IntVar(&cfg.Resilience.Controller.DescendAfter, "descend-after", cfg.Resilience.Controller.DescendAfter,
		"adaptive clients: consecutive failures before descending a lattice rung (X05)")
	fs.IntVar(&cfg.Resilience.Controller.AscendAfter, "ascend-after", cfg.Resilience.Controller.AscendAfter,
		"adaptive clients: consecutive successes before probing upward (X05)")
	fs.Float64Var(&cfg.Resilience.Controller.ProbeEvery, "probe-every", cfg.Resilience.Controller.ProbeEvery,
		"adaptive clients: period of the background upward probe in sim time (X05)")
	fs.IntVar(&cfg.Resilience.Controller.Hedge, "hedge", cfg.Resilience.Controller.Hedge,
		"adaptive clients: how many rungs above the current one a probe may test (X05)")
	fs.IntVar(&cfg.SoakOps, "soak-ops", cfg.SoakOps,
		"online-checking soak: operations per run (X06)")
	fs.IntVar(&cfg.SoakClients, "soak-clients", cfg.SoakClients,
		"online-checking soak: concurrent clients per run (X06)")
	return &cfg
}

func runExperiments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	cfg := configFlags(fs)
	parallel := fs.Bool("parallel", false, "run experiments concurrently (output identical to serial)")
	metricsPath := fs.String("metrics", "", "write the deterministic metrics snapshot (JSON) to this file")
	tracePath := fs.String("trace", "", "write the logical-clock event journal (JSON Lines) to this file")
	workers := fs.Int("workers", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar runtime metrics on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			return err
		}
	}
	observing := *metricsPath != "" || *tracePath != ""
	if observing {
		cfg.Metrics = obs.NewRegistry()
		cfg.Trace = obs.NewRecorder()
		// Engine metrics land in the same deterministic registry: they
		// are recorded at per-depth merge points identical for every
		// worker count, and counter/gauge/histogram updates commute, so
		// the snapshot bytes do not depend on experiment interleaving.
		automaton.ObserveEngine(cfg.Metrics)
		defer automaton.ObserveEngine(nil)
	}
	target := "all"
	if fs.NArg() > 0 {
		target = fs.Arg(0)
	}
	if target == "all" {
		var err error
		if *parallel {
			err = experiments.RunAllParallel(w, *cfg, *workers)
		} else {
			err = experiments.RunAll(w, *cfg)
		}
		if err != nil {
			return err
		}
		if observing {
			return writeObsFiles(*metricsPath, *tracePath, cfg.Metrics, cfg.Trace)
		}
		return nil
	}
	e, ok := experiments.Find(strings.ToUpper(target))
	if !ok {
		return fmt.Errorf("unknown experiment %q (try: relaxctl list)", target)
	}
	fmt.Fprintf(w, "== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
	if err := e.Run(w, *cfg); err != nil {
		return err
	}
	if observing {
		return writeObsFiles(*metricsPath, *tracePath, cfg.Metrics, cfg.Trace)
	}
	return nil
}

func lattices() map[string]*lattice.Relaxation {
	return map[string]*lattice.Relaxation{
		"taxi":         core.TaxiLattice(),
		"fifo":         core.FIFOLattice(),
		"taxi-prime":   core.TaxiLatticePrime(),
		"account":      core.AccountLattice(),
		"account-full": core.AccountLatticeUnrestricted(),
		"semiqueue":    core.SemiqueueLattice(3),
		"stuttering":   core.StutteringLattice(3),
		"combined":     core.CombinedSpoolLattice(3),
	}
}

func printLattice(args []string, w io.Writer) error {
	name := "taxi"
	if len(args) > 0 {
		name = args[0]
	}
	lat, ok := lattices()[name]
	if !ok {
		return fmt.Errorf("unknown lattice %q", name)
	}
	fmt.Fprint(w, lat.Hasse())
	fmt.Fprintln(w, "\nconstraints:")
	for i := 0; i < lat.Universe.Len(); i++ {
		c := lat.Universe.Constraint(i)
		fmt.Fprintf(w, "  %-4s %s\n", c.Name, c.Desc)
	}
	return nil
}

// automata returns the automata printable via "dot automaton".
func automata() map[string]automaton.Automaton {
	return map[string]automaton.Automaton{
		"bag":     specs.BagAutomaton(),
		"fifo":    specs.FIFOQueue(),
		"pq":      specs.PriorityQueue(),
		"mpq":     specs.MultiPriorityQueue(),
		"opq":     specs.OutOfOrderQueue(),
		"degen":   specs.DegeneratePriorityQueue(),
		"account": specs.BankAccount(),
	}
}

func printDOT(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("dot needs a kind: lattice or automaton")
	}
	kind := args[0]
	name := ""
	if len(args) > 1 {
		name = args[1]
	}
	switch kind {
	case "lattice":
		if name == "" {
			name = "taxi"
		}
		lat, ok := lattices()[name]
		if !ok {
			return fmt.Errorf("unknown lattice %q", name)
		}
		fmt.Fprint(w, lat.DOT())
		return nil
	case "automaton":
		if name == "" {
			name = "fifo"
		}
		a, ok := automata()[name]
		if !ok {
			return fmt.Errorf("unknown automaton %q", name)
		}
		alphabet := history.QueueAlphabet(2)
		if name == "account" {
			alphabet = history.AccountAlphabet(2)
		}
		fmt.Fprint(w, automaton.DOT(a, alphabet, 3))
		return nil
	default:
		return fmt.Errorf("unknown dot kind %q", kind)
	}
}

func verify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	cfg := configFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	failed := false
	for _, r := range core.CheckAllTaxiEquivalences(cfg.Bound) {
		status := "HOLDS"
		if !r.Holds() {
			status = "FAILS"
			failed = true
		}
		fmt.Fprintf(w, "%-26s L(%s) = L(%s): %s (explored %d histories to length %d)\n",
			r.Name+":", r.LHS, r.RHS, status, r.Compare.Explored, r.Compare.MaxLen)
		if !r.Holds() {
			fmt.Fprintf(w, "  counterexamples: onlyLHS=%v onlyRHS=%v\n", r.Compare.OnlyA, r.Compare.OnlyB)
		}
	}
	for _, r := range core.CheckAccountClaims(cfg.Bound) {
		status := "HOLDS"
		if !r.Holds() {
			status = "FAILS"
			failed = true
		}
		fmt.Fprintf(w, "%-26s L(%s) = L(%s): %s\n", r.Name+":", r.LHS, r.RHS, status)
	}
	for _, r := range core.CheckFIFOFamily(cfg.Bound) {
		status := "HOLDS"
		if !r.Holds() {
			status = "FAILS"
			failed = true
		}
		fmt.Fprintf(w, "%-26s L(%s) = L(%s): %s\n", r.Name+":", r.LHS, r.RHS, status)
	}
	if failed {
		return fmt.Errorf("some claims failed")
	}
	return nil
}

// trace demonstrates the combined automaton of Section 2.3: a crash
// event relaxes a constraint mid-run, the behavior degrades, and a
// repair restores it. With -trace FILE it also journals the degradation
// episodes as JSON Lines (one "env.episode" event per constraint run).
func trace(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "write the episode journal (JSON Lines) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	u := lattice.NewUniverse(
		lattice.Constraint{Name: "J", Desc: "no duplicate returns"},
		lattice.Constraint{Name: "K", Desc: "no out-of-order returns"},
	)
	lat := &lattice.Relaxation{
		Name:     "traced-queue",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			j, k := 2, 2
			if s.Has(u.Index("J")) {
				j = 1
			}
			if s.Has(u.Index("K")) {
				k = 1
			}
			return specs.SSQueue(j, k), true
		},
	}
	crash := env.Event{Name: "crash(S2)"}
	repair := env.Event{Name: "repair"}
	environment := &env.Environment{
		Universe: u,
		Init:     u.All(),
		Events:   []env.Event{crash, repair},
		Delta: func(c lattice.Set, ev env.Event) lattice.Set {
			switch ev.Name {
			case "crash(S2)":
				return c.Without(u.Index("J"))
			case "repair":
				return u.All()
			default:
				return c
			}
		},
	}
	cm := &env.Combined{Env: environment, Lat: lat}
	op := func(o history.Op) env.Input { return env.Input{Op: &o} }
	inputs := []env.Input{
		op(history.Enq(1)),
		op(history.DeqOk(1)),
		op(history.DeqOk(1)), // rejected at the top: no duplicates
		env.EventInput(crash),
		op(history.Enq(2)),
		op(history.DeqOk(2)),
		op(history.DeqOk(2)), // tolerated while J is lost
		env.EventInput(repair),
		op(history.Enq(3)),
		op(history.DeqOk(3)),
		op(history.DeqOk(3)), // rejected again after repair
	}
	steps := cm.Trace(inputs)
	fmt.Fprint(w, env.FormatTrace(u, steps))
	fmt.Fprintln(w, "\nepisodes:")
	for _, ep := range env.Episodes(steps) {
		a, _ := lat.Phi(ep.C)
		fmt.Fprintf(w, "  steps %2d..%2d  %-8s → %s\n", ep.From, ep.To, u.Format(ep.C), a.Name())
	}
	if *tracePath != "" {
		rec := obs.NewRecorder()
		env.RecordEpisodes(rec, u, lat, steps)
		return writeObsFiles("", *tracePath, nil, rec)
	}
	return nil
}

// census tallies a corpus of histories by lattice element.
func census(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("census", flag.ContinueOnError)
	name := fs.String("lattice", "taxi", "lattice to audit against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("census needs histories, e.g. %q", "Enq(1)/Ok() Deq()/Ok(1)")
	}
	lat, ok := lattices()[*name]
	if !ok {
		return fmt.Errorf("unknown lattice %q", *name)
	}
	var corpus []history.History
	for _, arg := range fs.Args() {
		h, err := history.Parse(arg)
		if err != nil {
			return err
		}
		corpus = append(corpus, h)
	}
	counts, rejected := lattice.Census(lat, corpus)
	for _, s := range lat.Universe.SubsetsBySize() {
		n, ok := counts[s]
		if !ok {
			continue
		}
		a, phiOK := lat.Phi(s)
		if !phiOK {
			continue
		}
		fmt.Fprintf(w, "%4d  %-10s %s\n", n, lat.Universe.Format(s), a.Name())
	}
	if rejected > 0 {
		fmt.Fprintf(w, "%4d  outside the lattice\n", rejected)
	}
	return nil
}

func audit(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	name := fs.String("lattice", "taxi", "lattice to audit against")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("audit needs a history, e.g. %q", "Enq(1)/Ok() Deq()/Ok(1)")
	}
	lat, ok := lattices()[*name]
	if !ok {
		return fmt.Errorf("unknown lattice %q", *name)
	}
	h, err := history.Parse(strings.Join(fs.Args(), " "))
	if err != nil {
		return err
	}
	sets, accepted := lat.WeakestAccepting(h)
	if !accepted {
		fmt.Fprintf(w, "history %v is not accepted anywhere in %s\n", h, lat.Name)
		return nil
	}
	fmt.Fprintf(w, "history %v degrades %s to:\n", h, lat.Name)
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Fprintf(w, "  %s → %s\n", lat.Universe.Format(s), a.Name())
	}
	return nil
}
