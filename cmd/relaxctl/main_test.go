package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(args, &buf)
	return buf.String(), err
}

func TestUsage(t *testing.T) {
	for _, args := range [][]string{nil, {"help"}, {"-h"}} {
		out, err := runCmd(t, args...)
		if err != nil {
			t.Fatalf("usage: %v", err)
		}
		if !strings.Contains(out, "relaxctl") || !strings.Contains(out, "verify") {
			t.Errorf("usage output: %q", out[:60])
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, err := runCmd(t, "bogus"); err == nil {
		t.Errorf("expected error")
	}
}

func TestList(t *testing.T) {
	out, err := runCmd(t, "list")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, id := range []string{"E01", "E08", "E16"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := runCmd(t, "run", "-trials", "2000", "-maxlen", "4", "e15")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "Summary chart") || !strings.Contains(out, "HOLDS") {
		t.Errorf("output: %q", out)
	}
	if _, err := runCmd(t, "run", "nope"); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestLatticeCommand(t *testing.T) {
	out, err := runCmd(t, "lattice", "account")
	if err != nil {
		t.Fatalf("lattice: %v", err)
	}
	if !strings.Contains(out, "SpuriousAccount") || !strings.Contains(out, "A2") {
		t.Errorf("output: %q", out)
	}
	if _, err := runCmd(t, "lattice", "nope"); err == nil {
		t.Errorf("unknown lattice should error")
	}
	// Default lattice.
	out, err = runCmd(t, "lattice")
	if err != nil || !strings.Contains(out, "replicated-priority-queue") {
		t.Errorf("default lattice: %v %q", err, out[:40])
	}
}

func TestDOTCommand(t *testing.T) {
	out, err := runCmd(t, "dot", "lattice", "combined")
	if err != nil {
		t.Fatalf("dot lattice: %v", err)
	}
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "SSqueue_1_1") {
		t.Errorf("dot output: %q", out[:60])
	}
	out, err = runCmd(t, "dot", "automaton", "pq")
	if err != nil || !strings.Contains(out, "Enq(1)/Ok()") {
		t.Errorf("dot automaton: %v %q", err, out[:60])
	}
	out, err = runCmd(t, "dot", "automaton", "account")
	if err != nil || !strings.Contains(out, "balance") {
		t.Errorf("dot account: %v", err)
	}
	// Defaults and errors.
	if _, err := runCmd(t, "dot"); err == nil {
		t.Errorf("dot without kind should error")
	}
	if _, err := runCmd(t, "dot", "nope"); err == nil {
		t.Errorf("unknown dot kind should error")
	}
	if _, err := runCmd(t, "dot", "lattice", "nope"); err == nil {
		t.Errorf("unknown dot lattice should error")
	}
	if _, err := runCmd(t, "dot", "automaton", "nope"); err == nil {
		t.Errorf("unknown dot automaton should error")
	}
	if out, err := runCmd(t, "dot", "lattice"); err != nil || !strings.Contains(out, "digraph") {
		t.Errorf("default dot lattice: %v", err)
	}
	if out, err := runCmd(t, "dot", "automaton"); err != nil || !strings.Contains(out, "digraph") {
		t.Errorf("default dot automaton: %v", err)
	}
}

func TestVerifyCommand(t *testing.T) {
	out, err := runCmd(t, "verify", "-maxlen", "4")
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	if strings.Contains(out, "FAILS") {
		t.Errorf("verify reported failure:\n%s", out)
	}
	for _, want := range []string{"Theorem 4", "One-copy serializability", "Premature-debit"} {
		if !strings.Contains(out, want) {
			t.Errorf("verify missing %q", want)
		}
	}
}

func TestAuditCommand(t *testing.T) {
	out, err := runCmd(t, "audit", "-lattice", "taxi", "Enq(3)/Ok() Deq()/Ok(3) Deq()/Ok(3)")
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !strings.Contains(out, "{Q1}") {
		t.Errorf("audit output: %q", out)
	}
	// Unaccepted history.
	out, err = runCmd(t, "audit", "Deq()/Ok(9)")
	if err != nil || !strings.Contains(out, "not accepted") {
		t.Errorf("audit unaccepted: %v %q", err, out)
	}
	// Errors.
	if _, err := runCmd(t, "audit"); err == nil {
		t.Errorf("audit without history should error")
	}
	if _, err := runCmd(t, "audit", "-lattice", "nope", "Enq(1)/Ok()"); err == nil {
		t.Errorf("unknown lattice should error")
	}
	if _, err := runCmd(t, "audit", "garbage"); err == nil {
		t.Errorf("unparseable history should error")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := runCmd(t, "trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	for _, want := range []string{"crash(S2)", "✗", "episodes:", "SSqueue_2_1", "repair"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

// TestRunObservabilityFiles pins the byte-determinism the -metrics and
// -trace flags promise: two runs at the same seed produce identical
// files, serial or parallel.
func TestRunObservabilityFiles(t *testing.T) {
	dir := t.TempDir()
	render := func(name string, parallel bool) (string, string) {
		t.Helper()
		m := filepath.Join(dir, name+".json")
		j := filepath.Join(dir, name+".jsonl")
		args := []string{"run", "-trials", "2000", "-maxlen", "4", "-metrics", m, "-trace", j}
		if parallel {
			args = append(args, "-parallel", "-workers", "4")
		}
		args = append(args, "all")
		if _, err := runCmd(t, args...); err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		mb, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := os.ReadFile(j)
		if err != nil {
			t.Fatal(err)
		}
		return string(mb), string(jb)
	}
	m1, j1 := render("serial1", false)
	m2, j2 := render("serial2", false)
	mp, jp := render("parallel", true)
	if m1 != m2 || m1 != mp {
		t.Errorf("metrics snapshots differ across runs/modes")
	}
	if j1 != j2 || j1 != jp {
		t.Errorf("event journals differ across runs/modes")
	}
	// The snapshot carries the engine, cluster, and txn layers (the
	// quorum layer's cache metrics are runtime-only by design).
	for _, want := range []string{"engine.expand.updates", "cluster.execute.attempt.", "txn.deq"} {
		if !strings.Contains(m1, want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	// The journal carries experiment markers and degradation episodes.
	for _, want := range []string{`"name":"experiment"`, `"name":"cluster.episode"`} {
		if !strings.Contains(j1, want) {
			t.Errorf("journal missing %q", want)
		}
	}
}

// TestRunSingleExperimentMetrics covers the non-"all" path of the
// observability flags.
func TestRunSingleExperimentMetrics(t *testing.T) {
	dir := t.TempDir()
	m := filepath.Join(dir, "m.json")
	if _, err := runCmd(t, "run", "-trials", "2000", "-metrics", m, "e14"); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "txn.deq") {
		t.Errorf("E14 metrics missing txn counters:\n%.200s", data)
	}
}

// TestTraceCommandJournal covers the trace subcommand's -trace flag.
func TestTraceCommandJournal(t *testing.T) {
	dir := t.TempDir()
	j := filepath.Join(dir, "t.jsonl")
	if _, err := runCmd(t, "trace", "-trace", j); err != nil {
		t.Fatalf("trace -trace: %v", err)
	}
	data, err := os.ReadFile(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"env.episode"`, "SSqueue_2_1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("episode journal missing %q:\n%s", want, data)
		}
	}
}

func TestCensusCommand(t *testing.T) {
	out, err := runCmd(t, "census", "-lattice", "taxi",
		"Enq(1)/Ok() Deq()/Ok(1)",
		"Enq(3)/Ok() Deq()/Ok(3) Deq()/Ok(3)",
		"Deq()/Ok(9)")
	if err != nil {
		t.Fatalf("census: %v", err)
	}
	for _, want := range []string{"{Q1, Q2}", "{Q1}", "outside the lattice"} {
		if !strings.Contains(out, want) {
			t.Errorf("census missing %q:\n%s", want, out)
		}
	}
	if _, err := runCmd(t, "census"); err == nil {
		t.Errorf("census without histories should error")
	}
	if _, err := runCmd(t, "census", "-lattice", "nope", "Enq(1)/Ok()"); err == nil {
		t.Errorf("unknown lattice should error")
	}
	if _, err := runCmd(t, "census", "garbage("); err == nil {
		t.Errorf("bad history should error")
	}
}
