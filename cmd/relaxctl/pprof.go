package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"sync"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/obs"
	"relaxlattice/internal/quorum"
)

// pprofOnce guards expvar.Publish, which panics on duplicate names if
// startPprof runs twice in one process (tests drive run() repeatedly).
var pprofOnce sync.Once

// startPprof serves net/http/pprof and expvar on addr, and installs the
// runtime observability registry: scheduling-dependent metrics (step-
// cache and view-cache hit rates, shard shapes) are published live at
// /debug/vars under "relaxlattice" — deliberately kept out of the
// deterministic -metrics snapshot, whose bytes must not depend on the
// scheduler. Listening starts synchronously so a bad address fails the
// command; serving happens in the background for the process lifetime.
func startPprof(addr string) error {
	var rt *obs.Registry
	pprofOnce.Do(func() {
		rt = obs.NewRegistry()
		expvar.Publish("relaxlattice", expvar.Func(func() any { return rt.Snapshot() }))
	})
	if rt != nil {
		automaton.ObserveEngineRuntime(rt)
		quorum.ObserveRuntime(rt)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pprof and expvar on http://%s/debug/pprof (runtime metrics at /debug/vars)\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintln(os.Stderr, "relaxctl: pprof server:", err)
		}
	}()
	return nil
}

// writeObsFiles writes the deterministic snapshot and journal the run
// accumulated. Both formats are byte-stable: same seed and bounds, same
// bytes, at any GOMAXPROCS — CI diffs them across worker counts.
func writeObsFiles(metricsPath, tracePath string, reg *obs.Registry, rec *obs.Recorder) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
