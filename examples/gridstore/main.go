// Grid store: the quorum machinery generalized beyond weighted voting.
// A priority queue is replicated over a 2×3 grid of sites where initial
// quorums are rows and final quorums are columns — every row meets
// every column, so one-copy serializability holds with quorums of size
// O(√n). When a whole row of sites is lost, no quorum survives; a
// degrading client keeps working against what remains, and the
// relaxation lattice names the behavior it got.
//
// Run with: go run ./examples/gridstore
package main

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// must aborts the demo on unexpected protocol errors: the Execute
// calls routed through it are expected to succeed.
func must(op history.Op, err error) history.Op {
	if err != nil {
		panic(err)
	}
	return op
}

func main() {
	grid := quorum.Grid(2, 3, history.NameEnq, history.NameDeq)
	fmt.Println("2×3 grid: initial quorums = rows {0,1,2} {3,4,5}; final quorums = columns {0,3} {1,4} {2,5}")
	fmt.Printf("rows always meet columns → realized relation: %v\n", grid.Relation())
	fmt.Printf("Deq availability at site-up 0.9: %.4f (quorum size 2-3 of 6 sites)\n\n",
		grid.Availability(history.NameDeq, 0.9))

	c := cluster.New(cluster.Config{
		Sites:   6,
		Quorums: grid,
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	})
	cl := c.Client(0)
	for _, p := range []int{4, 9, 2} {
		op, err := cl.Execute(history.EnqInv(p))
		fmt.Printf("enqueue: %v (err=%v)\n", op, err)
	}
	op := must(cl.Execute(history.DeqInv()))
	fmt.Printf("dequeue: %v  <- best first, one-copy serializable\n\n", op)

	// Losing a full row kills every column quorum.
	fmt.Println("!! sites 3,4,5 (the second row) crash")
	for _, s := range []int{3, 4, 5} {
		c.Crash(s)
	}
	if _, err := cl.Execute(history.DeqInv()); err != nil {
		fmt.Printf("strict client: %v\n", err)
	}

	// Degradation: operate on the surviving row.
	cl.Degrade = true
	op, err := cl.Execute(history.DeqInv())
	fmt.Printf("degrading client: %v (err=%v)\n", op, err)

	// The second row recovers with stale logs; before gossip its view
	// misses the degraded dequeue. A degrading client over there
	// re-services request 4.
	for _, s := range []int{3, 4, 5} {
		c.Restore(s)
	}
	c.Partition([]int{0, 1, 2}, []int{3, 4, 5})
	other := c.Client(3)
	other.Degrade = true
	// The second row never saw any entries (Enq final quorums were
	// columns, which include row-2 sites... which were up at enqueue
	// time), so it still holds the three enqueues.
	op2, err := other.Execute(history.DeqInv())
	fmt.Printf("stale row client:  %v (err=%v)\n\n", op2, err)

	obs := c.Observed()
	fmt.Printf("observed history: %v\n", obs)
	lat := core.TaxiSimpleLattice()
	sets, ok := lat.WeakestAccepting(obs)
	if !ok {
		fmt.Println("outside the lattice")
		return
	}
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Printf("degradation audit: %s → %s\n", lat.Universe.Format(s), a.Name())
	}
	fmt.Printf("accepted by MPQueue: %v (duplicates tolerated, order preserved)\n",
		automaton.Accepts(specs.MultiPriorityQueue(), obs))
}
