// Quickstart: define a data type's preferred behavior, build a
// relaxation lattice over explicit constraints, verify the lattice
// laws, and audit observed histories for degradation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/history"
	"relaxlattice/internal/lattice"
	"relaxlattice/internal/specs"
)

func main() {
	// 1. A constraint universe: what the environment must provide for
	// the preferred behavior to be implementable. Here: D = "items are
	// never duplicated", O = "items are never reordered".
	u := lattice.NewUniverse(
		lattice.Constraint{Name: "D", Desc: "no duplicate returns"},
		lattice.Constraint{Name: "O", Desc: "no out-of-order returns"},
	)

	// 2. The lattice homomorphism φ: each constraint set maps to the
	// automaton describing the behavior an object exhibits while
	// satisfying exactly those constraints. SSqueue_jk permits any of
	// the first k items to be returned up to j times; SSqueue_11 is the
	// FIFO queue.
	lat := &lattice.Relaxation{
		Name:     "quickstart-queue",
		Universe: u,
		Phi: func(s lattice.Set) (automaton.Automaton, bool) {
			j, k := 2, 2
			if s.Has(u.Index("D")) {
				j = 1
			}
			if s.Has(u.Index("O")) {
				k = 1
			}
			return specs.SSQueue(j, k), true
		},
	}

	// 3. Inspect the lattice.
	fmt.Print(lat.Hasse())
	fmt.Printf("preferred behavior: %s\n\n", lat.Preferred().Name())

	// 4. Verify the homomorphism is monotone: relaxing constraints only
	// ever adds behaviors (bounded model checking to history length 5).
	violations := lat.VerifyMonotone(history.QueueAlphabet(2), 5)
	fmt.Printf("monotonicity violations: %d\n\n", len(violations))

	// 5. Audit observed histories: how far did an execution degrade?
	for _, s := range []string{
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(1) Deq()/Ok(2)", // FIFO
		"Enq(1)/Ok() Enq(2)/Ok() Deq()/Ok(2) Deq()/Ok(1)", // reordered
		"Enq(1)/Ok() Deq()/Ok(1) Deq()/Ok(1)",             // duplicated
	} {
		h, err := history.Parse(s)
		if err != nil {
			panic(err)
		}
		sets, ok := lat.WeakestAccepting(h)
		if !ok {
			fmt.Printf("%-55s not in the lattice\n", h)
			continue
		}
		for _, set := range sets {
			a, _ := lat.Phi(set)
			fmt.Printf("%-55s strongest constraints %s → %s\n", h, u.Format(set), a.Name())
		}
	}
}
