// Print spooler (Section 4.2): clients spool files onto a shared
// transactional queue; printer controllers dequeue, print, and commit.
// Strict FIFO forces a dequeuer to wait whenever a concurrent
// transaction holds the head of the queue. The two relaxations let it
// proceed: optimistically (skip the held item — files may print out of
// order, each exactly once: Semiqueue_k) or pessimistically (print the
// held item again — files may print twice, always in order:
// Stuttering_j). This example executes the same collision under all
// three strategies and verifies each schedule lands exactly where the
// relaxation lattice predicts.
//
// Run with: go run ./examples/printspool
package main

import (
	"errors"
	"fmt"

	"relaxlattice/internal/specs"
	"relaxlattice/internal/txn"
	"relaxlattice/internal/value"
)

func main() {
	for _, strategy := range []txn.Strategy{txn.Blocking, txn.Optimistic, txn.Pessimistic} {
		fmt.Printf("=== %s spooler ===\n", strategy)
		collide(strategy)
		fmt.Println()
	}
	fmt.Println("summary: relaxing the FIFO constraint buys concurrency; the lattice")
	fmt.Println("position (Semiqueue_k / Stuttering_j) is exactly the number of")
	fmt.Println("concurrent dequeuers the environment allowed.")
}

func collide(strategy txn.Strategy) {
	q := txn.NewQueue(strategy)

	// Two clients spool reports 1 and 2.
	for _, f := range []value.Elem{1, 2} {
		t := q.Begin()
		must(q.Enq(t, f))
		must(q.Commit(t))
	}

	// Printer A dequeues the head and starts printing (uncommitted).
	printerA := q.Begin()
	fileA, err := q.Deq(printerA)
	must(err)
	fmt.Printf("printer A dequeues file %d and starts printing...\n", fileA)

	// Printer B arrives while A is still printing.
	printerB := q.Begin()
	fileB, err := q.Deq(printerB)
	switch {
	case errors.Is(err, txn.ErrBlocked):
		fmt.Println("printer B blocks until A commits (strict FIFO: no concurrency)")
		must(q.Commit(printerA))
		fileB, err = q.Deq(printerB)
		must(err)
		fmt.Printf("printer B finally dequeues file %d\n", fileB)
		must(q.Commit(printerB))
	case err == nil:
		fmt.Printf("printer B proceeds with file %d (no waiting)\n", fileB)
		// B finishes first: commit order B then A.
		must(q.Commit(printerB))
		must(q.Commit(printerA))
	default:
		panic(err)
	}

	s := q.Schedule()
	k := q.MaxConcurrentDequeuers()
	fmt.Printf("concurrent dequeuers observed: %d\n", k)
	fmt.Printf("schedule: %v\n", s)
	fmt.Printf("  Atomic(FIFO):         %v\n", txn.HybridAtomic(s, specs.FIFOQueue()))
	fmt.Printf("  Atomic(Semiqueue_2):  %v\n", txn.HybridAtomic(s, specs.Semiqueue(2)))
	fmt.Printf("  Atomic(Stuttering_2): %v\n", txn.HybridAtomic(s, specs.StutteringQueue(2)))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
