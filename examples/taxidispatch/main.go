// Taxi dispatch (Section 3.3): a replicated real-time priority queue
// of customer requests. Dispatchers enqueue prioritized requests and
// drivers dequeue the best pending one. The queue is replicated over
// five sites with packet-radio-grade communication: sites crash and
// the network partitions, and rather than refuse service, dispatchers
// and drivers degrade — enqueueing and dequeuing against whatever
// sites they can reach. The relaxation lattice tells us exactly what
// we gave up: with Q2 lost, requests may be serviced twice (MPQ); with
// Q1 lost, out of order (OPQ); with both lost, both (DegenPQ).
//
// Run with: go run ./examples/taxidispatch
package main

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
)

// must aborts the demo on unexpected protocol errors: every Execute
// below is expected to succeed — degraded responses are responses, not
// errors.
func must(op history.Op, err error) history.Op {
	if err != nil {
		panic(err)
	}
	return op
}

func main() {
	c := cluster.New(cluster.Config{
		Sites:   5,
		Quorums: quorum.TaxiAssignments(5)["Q1Q2"],
		Base:    specs.PriorityQueue(),
		Fold:    quorum.PQFold(),
		Respond: cluster.PQResponder,
	})
	dispatcher := c.Client(0)
	dispatcher.Degrade = true

	// Morning rush: three requests at priorities 2, 8, 5.
	for _, prio := range []int{2, 8, 5} {
		op, err := dispatcher.Execute(history.EnqInv(prio))
		fmt.Printf("dispatcher: %v (err=%v)\n", op, err)
	}

	// A driver picks up the most urgent request: priority 8.
	driver := c.Client(3)
	driver.Degrade = true
	op := must(driver.Execute(history.DeqInv()))
	fmt.Printf("driver:     %v  <- highest priority first\n", op)

	// The city network splits: downtown {0,1} loses uptown {2,3,4}.
	fmt.Println("\n!! network partition: {0,1} | {2,3,4}")
	c.Partition([]int{0, 1}, []int{2, 3, 4})

	// Both sides service the priority-5 request — each side's view
	// cannot see the other's dequeue (Q2 no longer holds).
	left, right := c.Client(0), c.Client(2)
	left.Degrade, right.Degrade = true, true
	op1 := must(left.Execute(history.DeqInv()))
	op2 := must(right.Execute(history.DeqInv()))
	fmt.Printf("left side:  %v\nright side: %v  <- same request, serviced twice\n", op1, op2)

	// What did we degrade to? Audit the global observed history.
	obs := c.Observed()
	fmt.Printf("\nobserved history: %v\n\n", obs)
	lat := core.TaxiSimpleLattice()
	sets, _ := lat.WeakestAccepting(obs)
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Printf("degradation audit: constraints %s still hold → behavior %s\n",
			lat.Universe.Format(s), a.Name())
	}
	fmt.Printf("  is a priority-queue history:       %v\n", automaton.Accepts(specs.PriorityQueue(), obs))
	fmt.Printf("  is a multi-priority-queue history: %v (duplicates, never out of order)\n",
		automaton.Accepts(specs.MultiPriorityQueue(), obs))

	// After the partition heals and logs gossip, the system climbs back
	// up the lattice: new operations are one-copy serializable again.
	c.Heal()
	c.Gossip()
	fmt.Println("\n!! partition healed, logs gossiped")
	op = must(dispatcher.Execute(history.EnqInv(9)))
	fmt.Printf("dispatcher: %v\n", op)
	op = must(driver.Execute(history.DeqInv()))
	fmt.Printf("driver:     %v  <- preferred behavior restored for new work\n", op)
}
