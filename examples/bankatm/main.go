// Bank ATM network (Section 3.4): customer accounts replicated at
// branch offices. To keep ATM interactions fast, a credit announces
// success as soon as one branch records it; the remaining updates
// propagate in the background. Debits always consult a majority of
// branches (constraint A2), so the account can never be overdrawn —
// but a debit racing a fresh credit may bounce spuriously (constraint
// A1 relaxed). The lattice makes the trade precise: the account's φ is
// defined only on the sublattice containing A2.
//
// Run with: go run ./examples/bankatm
package main

import (
	"fmt"

	"relaxlattice/internal/automaton"
	"relaxlattice/internal/cluster"
	"relaxlattice/internal/core"
	"relaxlattice/internal/history"
	"relaxlattice/internal/quorum"
	"relaxlattice/internal/specs"
	"relaxlattice/internal/value"
)

func credit(n int) history.Invocation {
	return history.Invocation{Name: history.NameCredit, Args: []int{n}}
}

func debit(n int) history.Invocation {
	return history.Invocation{Name: history.NameDebit, Args: []int{n}}
}

// must aborts the demo on unexpected protocol errors: every Execute
// below is expected to succeed — bounces are responses, not errors.
func must(op history.Op, err error) history.Op {
	if err != nil {
		panic(err)
	}
	return op
}

func main() {
	// Three branches; credits land at one site, debits need a majority.
	votes := quorum.NewVoting([]int{1, 1, 1}, map[string]quorum.OpQuorums{
		history.NameCredit: {Initial: 1, Final: 1},
		history.NameDebit:  {Initial: 2, Final: 2},
	})
	c := cluster.New(cluster.Config{
		Sites:   3,
		Quorums: votes,
		Base:    specs.BankAccount(),
		Fold:    quorum.AccountFold(),
		Respond: cluster.AccountResponder,
	})

	// A paycheck lands at branch 0 while the backbone to branches 1 and
	// 2 is congested (the credit's final quorum will grow later).
	c.Partition([]int{0}, []int{1, 2})
	payroll := c.Client(0)
	payroll.Degrade = true
	op := must(payroll.Execute(credit(100)))
	fmt.Printf("payroll at branch 0:   %v (propagation pending)\n", op)

	// The customer immediately tries to withdraw at branch 1: the
	// majority view {1,2} has not seen the credit — a premature debit.
	c.Partition([]int{1, 2}, []int{0})
	customer := c.Client(1)
	op = must(customer.Execute(debit(60)))
	fmt.Printf("customer at branch 1:  %v  <- spurious bounce (A1 violated)\n", op)

	// Background propagation completes; the same withdrawal succeeds.
	c.Heal()
	c.Gossip()
	op = must(customer.Execute(debit(60)))
	fmt.Printf("after propagation:     %v\n", op)

	// A genuinely excessive withdrawal still bounces.
	op = must(customer.Execute(debit(500)))
	fmt.Printf("overdraft attempt:     %v  <- real bounce\n", op)

	// The global balance is consistent and never went negative.
	states := quorum.AccountEval(c.MergedLog().History())
	fmt.Printf("\ntrue balance: %d (never negative: A2 held throughout)\n",
		states[0].(value.Account).Balance)

	// Lattice view: the observed history is not a preferred Account
	// history (the spurious bounce), but it is a SpuriousAccount
	// history — exactly φ({A2}).
	obs := c.Observed()
	fmt.Printf("\nobserved history: %v\n", obs)
	lat := core.AccountLattice()
	sets, _ := lat.WeakestAccepting(obs)
	for _, s := range sets {
		a, _ := lat.Phi(s)
		fmt.Printf("degradation audit: %s → %s\n", lat.Universe.Format(s), a.Name())
	}
	fmt.Printf("  preferred Account accepts:  %v\n", automaton.Accepts(specs.BankAccount(), obs))
	fmt.Printf("  SpuriousAccount accepts:    %v\n", automaton.Accepts(specs.SpuriousAccount(), obs))
	fmt.Println("\nφ is deliberately undefined below {A2}: the bank bounces checks")
	fmt.Println("spuriously but never overdraws — a sublattice, not the full 2^C.")
}
