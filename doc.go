// Package relaxlattice reproduces Herlihy & Wing, "Specifying Graceful
// Degradation in Distributed Systems" (PODC 1987) as an executable Go
// library: the relaxation-lattice specification method
// (internal/lattice), simple object automata and bounded language
// checking (internal/automaton, internal/specs), quorum-consensus
// replication with QCA automata and serial dependency relations
// (internal/quorum, internal/cluster), transactional atomicity with the
// optimistic/pessimistic spool queues (internal/txn), and a runnable
// experiment per paper figure and claim (internal/experiments).
//
// Start with the README, DESIGN.md (system inventory and per-experiment
// index), and examples/quickstart.
package relaxlattice
